package exp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"xdse/internal/eval"
	"xdse/internal/obs"
	"xdse/internal/workload"
)

// persistTechs covers all three mapper modes with one cheap technique each.
func persistTechs() []Technique {
	var out []Technique
	seen := map[eval.MapperMode]bool{}
	for _, tech := range AllTechniques() {
		if tech.Name == "RandomSearch-FixDF" || tech.Name == "RandomSearch-Codesign" ||
			tech.Name == "ExplainableDSE-Codesign" {
			if !seen[tech.Mode] {
				seen[tech.Mode] = true
				out = append(out, tech)
			}
		}
	}
	return out
}

// TestPersistentCacheFingerprintIdentical is the end-to-end acceptance
// criterion: a second campaign sharing the cache directory must produce
// trace fingerprints bit-identical to the first — the persist-hit path is
// indistinguishable from a cold run — in all three mapper modes, while
// answering at least half its layer searches from the store.
func TestPersistentCacheFingerprintIdentical(t *testing.T) {
	model := workload.ResNet18()
	for _, tech := range persistTechs() {
		t.Run(tech.Name, func(t *testing.T) {
			dir := t.TempDir()
			var buf bytes.Buffer
			cfg := tinyConfig(&buf)
			cfg.CacheDir = dir

			cold := RunOne(context.Background(), cfg, tech, model, 0)
			if cold.Err != "" {
				t.Fatalf("cold run failed: %s", cold.Err)
			}
			if cold.Stats.PersistWrites == 0 {
				t.Fatal("cold run persisted nothing")
			}

			warm := RunOne(context.Background(), cfg, tech, model, 0)
			if warm.Trace.Fingerprint() != cold.Trace.Fingerprint() {
				t.Fatalf("persist-hit run diverged from cold run:\ncold %s\nwarm %s",
					cold.Trace.Fingerprint(), warm.Trace.Fingerprint())
			}
			st := warm.Stats
			if st.PersistHits == 0 {
				t.Fatal("warm run produced no persistent-cache hits")
			}
			if st.PersistHits < st.PersistMisses {
				t.Errorf("store answered %d of %d lookups, want >= half",
					st.PersistHits, st.PersistHits+st.PersistMisses)
			}
		})
	}
}

// TestCampaignSharesOneStore checks that RunCampaign opens the store once,
// repeated (technique, model) searches across runs hit it, and its counters
// land in the campaign's metrics registry.
func TestCampaignSharesOneStore(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.CacheDir = dir
	cfg.Metrics = obs.NewRegistry()
	techs := persistTechs()[:1]
	models := []*workload.Model{workload.ResNet18()}

	first := RunCampaign(context.Background(), cfg, techs, models, 0)
	fp := first.Runs[0].Trace.Fingerprint()
	if _, err := os.Stat(filepath.Join(dir, "evalcache.jsonl")); err != nil {
		t.Fatalf("campaign wrote no cache file: %v", err)
	}

	cfg2 := tinyConfig(&buf)
	cfg2.CacheDir = dir
	cfg2.Metrics = obs.NewRegistry()
	second := RunCampaign(context.Background(), cfg2, techs, models, 0)
	if second.Runs[0].Trace.Fingerprint() != fp {
		t.Fatal("second campaign's fingerprint differs from the first's")
	}
	if second.Runs[0].Stats.PersistHits == 0 {
		t.Fatal("second campaign never hit the shared store")
	}
	if cfg2.Metrics.Counter("evalcache_records_loaded_total").Value() == 0 {
		t.Error("store counters missing from the campaign metrics registry")
	}
}
