package exp

import (
	"context"
	"fmt"
	"math/rand"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/workload"
)

// AblationResult is one Explainable-DSE variant's outcome.
type AblationResult struct {
	Variant     string
	BestLatency float64
	Feasible    bool
	Evaluations int
}

// RunAblations explores EfficientNetB0 (fixed dataflow, for speed) with
// Explainable-DSE variants that disable or alter the design decisions
// DESIGN.md calls out: the §4.4 aggregation rule, the top-K sub-function
// filter, the §4.6 budget-aware update, and the §4.5 one-parameter-per-
// candidate acquisition.
func RunAblations(ctx context.Context, cfg Config) []AblationResult {
	variants := []struct {
		name string
		opts dse.Options
	}{
		{"paper-defaults", dse.Options{}},
		{"aggregate-max", dse.Options{Aggregate: dse.AggregateMax}},
		{"aggregate-mean", dse.Options{Aggregate: dse.AggregateMean}},
		{"topK-1", dse.Options{TopK: 1}},
		{"topK-all", dse.Options{TopK: 1 << 20, ThresholdScale: 1e-9}},
		{"no-budget-aware-update", dse.Options{DisableBudgetAwareUpdate: true}},
		{"joint-acquisition", dse.Options{JointAcquisition: true}},
	}

	model := workload.EfficientNetB0()
	var out []AblationResult
	for _, v := range variants {
		space := arch.EdgeSpace()
		cons := eval.EdgeConstraints()
		ev := eval.New(eval.Config{
			Space: space, Models: []*workload.Model{model}, Constraints: cons,
			Mode: eval.FixedDataflow, Seed: cfg.Seed,
		})
		ex := dse.New(accelmodel.New(space, cons))
		ex.Opts = v.opts
		tr := ex.Run(ev.ProblemCtx(ctx, cfg.Budget), rand.New(rand.NewSource(cfg.Seed)))
		out = append(out, AblationResult{
			Variant:     v.name,
			BestLatency: tr.BestObjective(),
			Feasible:    tr.Best != nil,
			Evaluations: ev.Evaluations(),
		})
	}
	return out
}

// ReportAblations renders the variant comparison.
func ReportAblations(cfg Config, results []AblationResult) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Ablations: Explainable-DSE design decisions (EfficientNetB0, fixed dataflow) ==\n")
	tb := newTable("Variant", "BestLatency(ms)", "Designs")
	for _, r := range results {
		lat := "-"
		if r.Feasible {
			lat = fmt.Sprintf("%.2f", r.BestLatency)
		}
		tb.add(r.Variant, lat, fmt.Sprintf("%d", r.Evaluations))
	}
	tb.write(w)
}
