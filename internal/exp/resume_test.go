package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"xdse/internal/eval"
	"xdse/internal/opt"
	"xdse/internal/search"
	"xdse/internal/workload"
)

// resumeConfig is the seconds-scale configuration the kill-and-resume tests
// share: single worker so unique-evaluation ordinals are deterministic.
func resumeConfig() Config {
	cfg := Default()
	cfg.Budget = 12
	cfg.CodesignBudget = 8
	cfg.MapTrials = 60
	cfg.Models = []*workload.Model{workload.ResNet18()}
	cfg.Out = &bytes.Buffer{}
	cfg.Workers = 1
	return cfg
}

// resumeTechniques pairs Explainable-DSE with one black-box baseline in
// every mapper mode, so the resume contract is proven for the engine and
// for the batch-streaming baselines alike.
func resumeTechniques() []Technique {
	return []Technique{
		explainable("ExplainableDSE-FixDF", eval.FixedDataflow),
		explainable("ExplainableDSE-Random", eval.RandomMappings),
		explainable("ExplainableDSE-Codesign", eval.PrunedMappings),
		blackBox("SimulatedAnnealing-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.Anneal{} }),
		blackBox("SimulatedAnnealing-Random", eval.RandomMappings, func() search.Optimizer { return opt.Anneal{} }),
		blackBox("SimulatedAnnealing-Codesign", eval.PrunedMappings, func() search.Optimizer { return opt.Anneal{} }),
	}
}

// assertStepPrefix checks the interrupted trace is a clean prefix of the
// reference acquisition sequence — the batch-boundary cancellation contract.
func assertStepPrefix(t *testing.T, partial, ref *search.Trace) {
	t.Helper()
	if len(partial.Steps) >= len(ref.Steps) {
		t.Fatalf("interrupted trace has %d steps, reference %d — expected a strict prefix",
			len(partial.Steps), len(ref.Steps))
	}
	for i, s := range partial.Steps {
		r := ref.Steps[i]
		if !s.Point.Equal(r.Point) || s.Costs.Objective != r.Costs.Objective {
			t.Fatalf("interrupted step %d diverges from reference: %s vs %s",
				i, s.Point.Key(), r.Point.Key())
		}
	}
}

// TestKillAndResumeDeterminism is the headline resilience guarantee: a run
// cancelled at an arbitrary unique-evaluation index and resumed from its
// journal finishes bit-identical — same acquisition steps, same best, same
// unique-design budget accounting — to a run that was never interrupted.
func TestKillAndResumeDeterminism(t *testing.T) {
	model := workload.ResNet18()
	for _, tech := range resumeTechniques() {
		tech := tech
		t.Run(tech.Name, func(t *testing.T) {
			t.Parallel()
			cfg := resumeConfig()

			// Uninterrupted reference.
			ref := RunOne(context.Background(), cfg, tech, model, 0)
			if ref.Interrupted || ref.Err != "" {
				t.Fatalf("reference run failed: %+v", ref.Err)
			}
			refFP := ref.Trace.Fingerprint()

			for _, killAt := range []int{1, 3, 5} {
				ctx, cancel := context.WithCancel(context.Background())
				kcfg := cfg
				kcfg.CheckpointDir = t.TempDir()
				kcfg.Faults = &eval.FaultPolicy{OnEvaluation: func(ord int) {
					if ord == killAt {
						cancel()
					}
				}}
				killed := RunOne(ctx, kcfg, tech, model, 0)
				cancel()
				if !killed.Interrupted {
					t.Fatalf("killAt=%d: run not marked Interrupted", killAt)
				}
				assertStepPrefix(t, killed.Trace, ref.Trace)

				rcfg := cfg
				rcfg.CheckpointDir = kcfg.CheckpointDir
				rcfg.Resume = true
				resumed := RunOne(context.Background(), rcfg, tech, model, 0)
				if resumed.Interrupted || resumed.Err != "" {
					t.Fatalf("killAt=%d: resumed run failed: %+v", killAt, resumed.Err)
				}
				if resumed.Resumed == 0 {
					t.Errorf("killAt=%d: resumed run replayed no journaled evaluations", killAt)
				}
				if got := resumed.Trace.Fingerprint(); got != refFP {
					t.Errorf("killAt=%d: resumed trace diverges from reference:\n%s",
						killAt, resumed.Trace.Diff(ref.Trace))
				}
				if resumed.Evaluations != ref.Evaluations {
					t.Errorf("killAt=%d: resumed Evaluations = %d, reference %d",
						killAt, resumed.Evaluations, ref.Evaluations)
				}
			}
		})
	}
}

// TestKillAndResumeParallelWorkers repeats the contract with a parallel
// evaluation pool: the kill lands at a nondeterministic point, but the
// resumed trace must still match the uninterrupted reference exactly.
func TestKillAndResumeParallelWorkers(t *testing.T) {
	model := workload.ResNet18()
	tech := explainable("ExplainableDSE-FixDF", eval.FixedDataflow)
	cfg := resumeConfig()
	cfg.Workers = 4

	ref := RunOne(context.Background(), cfg, tech, model, 0)
	if ref.Interrupted || ref.Err != "" {
		t.Fatalf("reference run failed: %+v", ref.Err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	kcfg := cfg
	kcfg.CheckpointDir = t.TempDir()
	kcfg.Faults = &eval.FaultPolicy{OnEvaluation: func(ord int) {
		if ord == 4 {
			cancel()
		}
	}}
	killed := RunOne(ctx, kcfg, tech, model, 0)
	cancel()
	if !killed.Interrupted {
		t.Fatal("run not marked Interrupted")
	}

	rcfg := cfg
	rcfg.CheckpointDir = kcfg.CheckpointDir
	rcfg.Resume = true
	resumed := RunOne(context.Background(), rcfg, tech, model, 0)
	if got, want := resumed.Trace.Fingerprint(), ref.Trace.Fingerprint(); got != want {
		t.Errorf("resumed trace diverges from reference:\n%s", resumed.Trace.Diff(ref.Trace))
	}
	if resumed.Evaluations != ref.Evaluations {
		t.Errorf("resumed Evaluations = %d, reference %d", resumed.Evaluations, ref.Evaluations)
	}
}

// TestResumeOfCompletedRunIsIdentical: resuming a journal of a run that
// finished cleanly re-produces the identical trace without recomputing any
// design.
func TestResumeOfCompletedRunIsIdentical(t *testing.T) {
	model := workload.ResNet18()
	tech := blackBox("SimulatedAnnealing-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.Anneal{} })
	cfg := resumeConfig()
	cfg.CheckpointDir = t.TempDir()

	first := RunOne(context.Background(), cfg, tech, model, 0)
	if first.Interrupted || first.Resumed != 0 {
		t.Fatalf("first run: %+v", first)
	}

	cfg.Resume = true
	second := RunOne(context.Background(), cfg, tech, model, 0)
	if second.Resumed != first.Evaluations {
		t.Errorf("second run replayed %d evaluations, journal holds %d", second.Resumed, first.Evaluations)
	}
	if second.Trace.Fingerprint() != first.Trace.Fingerprint() {
		t.Errorf("replayed trace diverges:\n%s", second.Trace.Diff(first.Trace))
	}
}

// TestCampaignSurvivesInjectedPanics: a campaign whose evaluations panic at
// several indices still completes every run, reports the recoveries, and
// records the crashed designs as infeasible.
func TestCampaignSurvivesInjectedPanics(t *testing.T) {
	cfg := resumeConfig()
	cfg.Faults = &eval.FaultPolicy{PanicAt: []int{0, 2, 5}}
	techs := []Technique{
		explainable("ExplainableDSE-FixDF", eval.FixedDataflow),
		blackBox("SimulatedAnnealing-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.Anneal{} }),
	}
	c := RunCampaign(context.Background(), cfg, techs, cfg.Models, 0)
	if len(c.Runs) != 2 {
		t.Fatalf("campaign runs = %d", len(c.Runs))
	}
	for _, r := range c.Runs {
		if r.Err != "" {
			t.Errorf("%s: run crashed despite containment: %s", r.Technique, r.Err)
		}
		if r.Stats.PanicsRecovered == 0 {
			t.Errorf("%s: no recovered panics reported", r.Technique)
		}
		errored := 0
		for _, s := range r.Trace.Steps {
			if s.Costs.Err != "" && strings.Contains(s.Costs.Err, "panic") {
				errored++
			}
		}
		if errored == 0 {
			t.Errorf("%s: no panicked design recorded in the trace", r.Technique)
		}
	}
}

// TestInterruptedCampaignSkipsRemainingRuns: cancelling the campaign context
// marks in-progress and unstarted runs Interrupted but still returns one Run
// per roster entry.
func TestInterruptedCampaignSkipsRemainingRuns(t *testing.T) {
	cfg := resumeConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := RunCampaign(ctx, cfg, resumeTechniques()[:2], cfg.Models, 0)
	if len(c.Runs) != 2 {
		t.Fatalf("campaign runs = %d", len(c.Runs))
	}
	for _, r := range c.Runs {
		if !r.Interrupted {
			t.Errorf("%s: run not marked Interrupted under a cancelled context", r.Technique)
		}
	}
}
