// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (§6 and the appendices). Each
// experiment has a Run function returning structured results plus a Report
// function rendering the same rows/series the paper presents; cmd/xdse and
// the root benchmark harness both drive this package.
package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/checkpoint"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/evalcache"
	"xdse/internal/fleet"
	"xdse/internal/obs"
	"xdse/internal/opt"
	"xdse/internal/search"
	"xdse/internal/workload"
)

// Config scales the experiments. The defaults are reduced from the paper's
// budgets (2500 static iterations, 10,000 mapping trials) so the whole
// suite regenerates in minutes on a laptop; set XDSE_FULL=1 (or call Full)
// to restore the paper's budgets, which take correspondingly longer.
type Config struct {
	// Budget is the static-exploration iteration budget (paper: 2500).
	Budget int
	// CodesignBudget is the iteration budget for codesign explorations
	// of black-box techniques (Explainable-DSE converges on its own).
	CodesignBudget int
	// DynamicBudget is the dynamic-DSE budget of Table 2 (paper: 100).
	DynamicBudget int
	// MapTrials is the per-layer mapping-search budget (paper: 10,000).
	MapTrials int
	// Seed makes runs reproducible.
	Seed int64
	// Workers sizes each evaluator's batch-evaluation worker pool (0 =
	// the evaluator default; 1 = serial). Results are bit-identical for
	// any value: candidate batches are recorded in deterministic order
	// and all optimizer randomness stays on the run's own goroutine.
	Workers int
	// Parallel bounds how many (technique, model) runs of a campaign
	// execute concurrently (0 or 1 = serial). Runs share nothing — each
	// owns its evaluator and RNG — so campaign results are identical for
	// any value, and are always assembled in roster order.
	Parallel int
	// Models is the workload suite (defaults to the 11-model suite).
	Models []*workload.Model
	// Out receives the reports (defaults to os.Stdout).
	Out io.Writer
	// CSVDir, when non-empty, receives one CSV trace per run
	// ("<technique>_<model>.csv"), the raw series behind the figures.
	CSVDir string
	// CheckpointDir, when non-empty, journals every run's unique design
	// evaluations under "<dir>/<technique>_<model>/", making a killed
	// campaign resumable (see internal/checkpoint).
	CheckpointDir string
	// Resume selects what an existing journal under CheckpointDir means:
	// true replays it (continuing a killed campaign), false discards it
	// and starts fresh.
	Resume bool
	// EvalTimeout, when positive, arms the evaluator's per-evaluation
	// watchdog (see eval.Config.EvalTimeout).
	EvalTimeout time.Duration
	// Faults, when non-nil, injects deterministic evaluation failures —
	// the resilience-testing hook (see eval.FaultPolicy).
	Faults *eval.FaultPolicy
	// Retry configures each evaluator's transient-fault retry layer (see
	// eval.RetryPolicy); the zero value disables retries.
	Retry eval.RetryPolicy
	// Trace, when non-nil, receives every run's structured explanation
	// events, each labeled "<technique>_<model>" (see internal/obs). The
	// sink must be safe for concurrent use when Parallel > 1. Events are
	// derived from — never feed back into — the acquisition sequence, so
	// attaching a sink cannot change campaign results.
	Trace obs.Sink
	// Metrics, when non-nil, accumulates every run's evaluator metrics
	// (counters and latency histograms), merged across the campaign.
	Metrics *obs.Registry
	// CacheDir, when non-empty, persists every layer-search outcome to the
	// cross-run content-addressed store under this directory (see
	// internal/evalcache): a second campaign sharing the directory answers
	// repeated layer searches from disk with bit-identical traces.
	// RunCampaign opens the store once and shares it across runs; a direct
	// RunOne call opens its own.
	CacheDir string
	// Cache, when non-nil, is an already-open persistent store shared by
	// every run (the serve daemon injects its own); CacheDir is ignored.
	Cache *evalcache.Store
	// Fleet, when non-nil, shards every run's evaluation batches across a
	// pool of xdse serve workers (see internal/fleet): each batch's fresh
	// points are dispatched under leases and the returned content-addressed
	// layer records are installed before local evaluation. The hook is
	// result neutral — traces and fingerprints are bit-identical with or
	// without a fleet, under any worker failure, hedged duplicate, open
	// circuit breaker, injected chaos fault, or coordinator crash-resume
	// (give the coordinator a JournalDir inside CheckpointDir and set its
	// Resume alongside this Config's) — so attaching one changes only
	// wall-clock time. The caller owns the coordinator's lifecycle
	// (fleet.New / Close).
	Fleet *fleet.Coordinator
}

// Default returns the reduced-budget configuration.
func Default() Config {
	return Config{
		Budget:         300,
		CodesignBudget: 80,
		DynamicBudget:  100,
		MapTrials:      500,
		Seed:           1,
		Models:         workload.Suite(),
		Out:            os.Stdout,
	}
}

// Full returns the paper-scale configuration.
func Full() Config {
	c := Default()
	c.Budget = 2500
	c.CodesignBudget = 2500
	c.MapTrials = 10000
	return c
}

// FromEnv returns Full when XDSE_FULL=1, else Default.
func FromEnv() Config {
	if os.Getenv("XDSE_FULL") == "1" {
		return Full()
	}
	return Default()
}

func (c Config) out() io.Writer {
	if c.Out != nil {
		return c.Out
	}
	return os.Stdout
}

// Technique describes one DSE technique under a mapper mode.
type Technique struct {
	Name string
	Mode eval.MapperMode
	// Make constructs a fresh optimizer; Explainable-DSE needs the space
	// and constraints to build its domain bottleneck model.
	Make func(space *arch.Space, cons eval.Constraints) search.Optimizer
}

func blackBox(name string, mode eval.MapperMode, mk func() search.Optimizer) Technique {
	return Technique{
		Name: name,
		Mode: mode,
		Make: func(*arch.Space, eval.Constraints) search.Optimizer { return mk() },
	}
}

func explainable(name string, mode eval.MapperMode) Technique {
	return Technique{
		Name: name,
		Mode: mode,
		Make: func(space *arch.Space, cons eval.Constraints) search.Optimizer {
			return dse.New(accelmodel.New(space, cons))
		},
	}
}

// FixDFTechniques returns the Fig. 9 fixed-dataflow technique roster.
func FixDFTechniques() []Technique {
	return []Technique{
		blackBox("GridSearch-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.Grid{} }),
		blackBox("RandomSearch-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.Random{} }),
		blackBox("SimulatedAnnealing-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.Anneal{} }),
		blackBox("GeneticAlgorithm-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.Genetic{} }),
		blackBox("BayesianOpt-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.Bayes{} }),
		blackBox("HyperMapper2.0-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.HyperMapper{} }),
		blackBox("ReinforcementLearning-FixDF", eval.FixedDataflow, func() search.Optimizer { return opt.RL{} }),
		explainable("ExplainableDSE-FixDF", eval.FixedDataflow),
	}
}

// CodesignTechniques returns the Fig. 9 hardware/mapping codesign roster.
func CodesignTechniques() []Technique {
	return []Technique{
		blackBox("RandomSearch-Codesign", eval.RandomMappings, func() search.Optimizer { return opt.Random{} }),
		blackBox("HyperMapper2.0-Codesign", eval.RandomMappings, func() search.Optimizer { return opt.HyperMapper{} }),
		explainable("ExplainableDSE-Codesign", eval.PrunedMappings),
	}
}

// AllTechniques returns the combined roster in the paper's table order.
func AllTechniques() []Technique {
	return append(FixDFTechniques(), CodesignTechniques()...)
}

// TechniqueByName resolves a technique from the combined roster by its
// exact name — the job-spec currency of the serving layer (internal/serve).
func TechniqueByName(name string) (Technique, bool) {
	for _, t := range AllTechniques() {
		if t.Name == name {
			return t, true
		}
	}
	return Technique{}, false
}

// Run is the outcome of one (technique, model) exploration.
type Run struct {
	Technique string
	Model     string
	Mode      eval.MapperMode
	Trace     *search.Trace
	// Evaluations is the number of unique design points evaluated.
	Evaluations int
	// Elapsed is the exploration wall-clock time.
	Elapsed time.Duration
	// Stats are the evaluator's counters for this run (cache hits,
	// in-flight dedups, mapping-search trials, evaluation wall time).
	Stats eval.Stats
	// Batch reports the run's batch-evaluation layer activity.
	Batch search.BatchReport
	// Err is non-empty when the run itself crashed (an optimizer panic
	// escaped the evaluation layer's containment): the trace is whatever
	// was recorded before the crash, and the campaign carried on.
	Err string
	// Resumed is the number of journaled evaluations replayed into this
	// run from a previous (killed) invocation.
	Resumed int
	// CheckpointDir is the run's journal directory ("" when the run was
	// not checkpointed); a killed campaign is resumable from it.
	CheckpointDir string
	// Interrupted reports the run's context was cancelled before the
	// exploration completed; the trace is a clean batch-boundary prefix.
	Interrupted bool
	// Metrics is the run's private metrics registry (the counters behind
	// Stats plus latency histograms); RunCampaign merges every run's
	// registry into Config.Metrics when one is attached.
	Metrics *obs.Registry
}

// RunOne performs one exploration of a model with a technique. A budget of
// zero or less selects the configuration's per-technique static budget.
// Cancelling ctx stops the exploration at the next batch boundary and
// returns the partial run with Interrupted set; with cfg.CheckpointDir the
// completed evaluations are journaled, so invoking the same run again with
// cfg.Resume produces a final trace bit-identical to an uninterrupted one.
func RunOne(ctx context.Context, cfg Config, tech Technique, model *workload.Model, budget int) Run {
	if ctx == nil {
		ctx = context.Background()
	}
	if budget <= 0 {
		budget = cfg.budgetFor(tech)
	}
	space := arch.EdgeSpace()
	cons := eval.EdgeConstraints()
	ev := eval.New(eval.Config{
		Space:        space,
		Models:       []*workload.Model{model},
		Constraints:  cons,
		Mode:         tech.Mode,
		MapTrials:    cfg.MapTrials,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		EvalTimeout:  cfg.EvalTimeout,
		Faults:       cfg.Faults,
		Retry:        cfg.Retry,
		CacheDir:     cfg.CacheDir,
		PersistCache: cfg.Cache,
	})
	o := tech.Make(space, cons)
	run := Run{Technique: tech.Name, Model: model.Name, Mode: tech.Mode}
	warnf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "exp: "+format+"\n", args...)
	}
	var prob *search.Problem
	if cfg.CheckpointDir != "" {
		dir := filepath.Join(cfg.CheckpointDir, fmt.Sprintf("%s_%s", sanitize(tech.Name), sanitize(model.Name)))
		j, err := checkpoint.Open(dir, checkpoint.Options{Fresh: !cfg.Resume, Warnf: warnf})
		if err != nil {
			warnf("checkpoint %s unavailable, running unjournaled: %v", dir, err)
			prob = ev.ProblemCtx(ctx, budget)
		} else {
			defer j.Close()
			run.CheckpointDir = dir
			run.Resumed = len(j.Replayed())
			prob = ev.ResumableProblem(ctx, budget, j, warnf)
		}
	} else {
		prob = ev.ProblemCtx(ctx, budget)
	}
	// Observability is strictly opt-in: the problem carries no event sink
	// unless the campaign asked for a trace or a metrics registry, so the
	// engine's explanation-rendering paths stay disabled (and free) in
	// plain runs. The metrics sink folds event-derived counters (rule
	// firings, bottleneck factors) into the run's own registry; the trace
	// sink gets every event stamped with this run's label.
	var camp obs.Span
	if cfg.Trace != nil || cfg.Metrics != nil {
		label := fmt.Sprintf("%s_%s", sanitize(tech.Name), sanitize(model.Name))
		prob.Events = obs.Multi(obs.WithRun(cfg.Trace, label), obs.NewMetricsSink(ev.Metrics()))
		if cfg.Trace != nil {
			// The tracing spine: one trace per run, rooted in a campaign span
			// that every batch span parents to. The trace ID is the run label
			// and span IDs count from a per-run sequence — fully deterministic,
			// so a resumed run re-emits identical identities and attaching the
			// tracer provably cannot perturb fingerprints. The flip side:
			// repeating the same (technique, model) run into one shared sink
			// collides IDs; give repeat campaigns separate -trace-out files.
			tracer := obs.NewTracer(prob.Events, "")
			camp = tracer.StartRoot(label, obs.SpanCampaign, label)
			prob.Tracer = tracer
			prob.TraceSpan = camp.Context()
		}
	}
	if cfg.Fleet != nil {
		// Remote batch preparation: a pure cache warmer, so the optimizer
		// below sees identical results whether the fleet helped or not.
		prob.Prepare = cfg.Fleet.Prepare(ev, model.Name)
	}
	start := time.Now()
	tr, panicErr := runOptimizer(o, prob, rand.New(rand.NewSource(cfg.Seed)))
	camp.Err = panicErr
	if ctx.Err() == nil {
		// An interrupted run suppresses the campaign-end span so its trace
		// stays a strict event-for-event prefix of an uninterrupted run's
		// (the resume re-emits the full stream, campaign span included).
		camp.End()
	}
	run.Err = panicErr
	run.Interrupted = ctx.Err() != nil
	if cfg.CSVDir != "" && !run.Interrupted {
		writeTraceCSV(cfg.CSVDir, tech.Name, model.Name, tr)
	}
	run.Trace = tr
	run.Evaluations = ev.Evaluations()
	run.Elapsed = time.Since(start)
	run.Stats = ev.Stats()
	run.Batch = prob.Stats.Report()
	run.Metrics = ev.Metrics()
	if cfg.Metrics != nil {
		cfg.Metrics.Merge(ev.Metrics())
	}
	return run
}

// runOptimizer runs one optimizer with last-resort panic containment: a
// panic that escapes the evaluation layer (a bug in the optimizer itself)
// is reported on the run instead of aborting the campaign. The returned
// trace is never nil.
func runOptimizer(o search.Optimizer, p *search.Problem, rng *rand.Rand) (tr *search.Trace, panicErr string) {
	defer func() {
		if rec := recover(); rec != nil {
			panicErr = fmt.Sprintf("optimizer panic: %v", rec)
		}
		if tr == nil {
			tr = &search.Trace{Name: o.Name()}
		}
	}()
	tr = o.Run(p, rng)
	return tr, ""
}

// budgetFor picks the iteration budget for a technique at static scale.
func (c Config) budgetFor(tech Technique) int {
	if tech.Mode == eval.FixedDataflow {
		return c.Budget
	}
	return c.CodesignBudget
}

// Campaign is a set of runs covering techniques x models at one budget
// scale; the Fig. 9/10/12 and Table 3 views all render from one campaign.
type Campaign struct {
	Runs []Run
}

// Get returns the run for (technique, model), or nil.
func (c *Campaign) Get(tech, model string) *Run {
	for i := range c.Runs {
		if c.Runs[i].Technique == tech && c.Runs[i].Model == model {
			return &c.Runs[i]
		}
	}
	return nil
}

// RunCampaign explores every model with every technique. Budget <= 0 uses
// the per-technique static budget from cfg. When cfg.Parallel > 1, up to
// that many runs execute concurrently; every run is self-contained (own
// evaluator, own RNG), and results land in a positionally-indexed slice, so
// the campaign is identical to a serial one in both content and order.
//
// Resilience: a run that crashes outright (even outside the optimizer, e.g.
// during evaluator construction) is reported through its Run.Err — the
// campaign always completes with one Run per (technique, model) pair.
// Cancelling ctx stops every in-progress run at its next batch boundary and
// skips not-yet-started ones (their runs come back Interrupted with empty
// traces).
func RunCampaign(ctx context.Context, cfg Config, techs []Technique, models []*workload.Model, budget int) *Campaign {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Cache == nil && cfg.CacheDir != "" {
		// Open the persistent store once and share it across every run, so
		// repeated layer searches within the campaign hit its in-memory
		// index and the journal is loaded a single time. Registering the
		// campaign's metrics registry (when attached) surfaces the store's
		// load/corruption counters alongside the evaluator counters. An
		// unopenable store degrades to an uncached campaign, never a
		// failure.
		store, err := evalcache.Open(cfg.CacheDir, evalcache.Options{
			Registry: cfg.Metrics,
			Warnf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "exp: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "exp: persistent cache %s unavailable, running uncached: %v\n", cfg.CacheDir, err)
		} else {
			cfg.Cache = store
		}
	}
	type job struct {
		tech   Technique
		model  *workload.Model
		budget int
	}
	var jobs []job
	for _, tech := range techs {
		for _, m := range models {
			b := budget
			if b <= 0 {
				b = cfg.budgetFor(tech)
			}
			jobs = append(jobs, job{tech, m, b})
		}
	}
	runs := make([]Run, len(jobs))
	safeRun := func(i int, j job) {
		defer func() {
			if rec := recover(); rec != nil {
				runs[i] = Run{
					Technique: j.tech.Name,
					Model:     j.model.Name,
					Mode:      j.tech.Mode,
					Trace:     &search.Trace{Name: j.tech.Name},
					Err:       fmt.Sprintf("run panic: %v", rec),
				}
			}
		}()
		runs[i] = RunOne(ctx, cfg, j.tech, j.model, j.budget)
	}
	// Note: the coordinator's fleet_* instruments are NOT merged into
	// cfg.Metrics here — the coordinator outlives campaigns (a process may
	// run several over one fleet), so its owner merges c.Fleet.Metrics()
	// exactly once at shutdown (cmd/xdse does this before -metrics-out).
	if cfg.Parallel <= 1 {
		for i, j := range jobs {
			safeRun(i, j)
		}
		return &Campaign{Runs: runs}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallel)
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			safeRun(i, j)
		}(i, j)
	}
	wg.Wait()
	return &Campaign{Runs: runs}
}

// writeTraceCSV dumps one run's acquisition trace; export failures are
// reported on stderr but never fail the experiment.
func writeTraceCSV(dir, tech, model string, tr *search.Trace) {
	name := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", sanitize(tech), sanitize(model)))
	f, err := os.Create(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "exp: trace export: %v\n", err)
		return
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "exp: trace export: %v\n", err)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// fmtLatency renders a best-objective cell like the paper's tables: the
// latency in ms, or "-" when no feasible solution was found.
func fmtLatency(tr *search.Trace) string {
	if tr.Best == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f", tr.BestObjective())
}
