package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"xdse/internal/obs"
	"xdse/internal/workload"
)

// This file renders the campaign-derived views of the paper: Fig. 9 (best
// latency per technique/model), Fig. 10 (search time and iterations),
// Fig. 12 (feasibility of acquisitions), Table 2 (dynamic 100-iteration
// DSE), and Table 3 (per-attempt objective reduction).

// modelNames extracts the model order of a config.
func modelNames(models []*workload.Model) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name
	}
	return out
}

// ReportFig9 renders the best feasible latency (ms) achieved by every
// technique on every model — the Fig. 9 result (and, when the campaign ran
// at DynamicBudget, the Table 2 result).
func ReportFig9(cfg Config, c *Campaign, title string) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== %s: best feasible latency (ms; '-' = none found) ==\n", title)
	names := modelNames(cfg.Models)
	header := append([]string{"Technique"}, shortNames(names)...)
	tb := newTable(header...)
	for _, tech := range techniqueOrder(c) {
		row := []string{tech}
		for _, m := range names {
			if r := c.Get(tech, m); r != nil {
				row = append(row, fmtLatency(r.Trace))
			} else {
				row = append(row, "")
			}
		}
		tb.add(row...)
	}
	tb.write(w)
}

// ReportFig10 renders exploration wall-clock time and evaluated designs —
// the Fig. 10 result (bars = time, triangles = designs evaluated).
func ReportFig10(cfg Config, c *Campaign) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Fig10: search time (s) / designs evaluated ==\n")
	names := modelNames(cfg.Models)
	tb := newTable(append([]string{"Technique"}, shortNames(names)...)...)
	for _, tech := range techniqueOrder(c) {
		row := []string{tech}
		for _, m := range names {
			if r := c.Get(tech, m); r != nil {
				row = append(row, fmt.Sprintf("%.1fs/%d", r.Elapsed.Seconds(), r.Evaluations))
			} else {
				row = append(row, "")
			}
		}
		tb.add(row...)
	}
	tb.write(w)
}

// ReportFig12 renders the fraction of acquisitions meeting (a) area+power
// and (b) all constraints — the Fig. 12 feasibility analysis.
func ReportFig12(cfg Config, c *Campaign) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Fig12: feasible acquisitions %% (area+power / all constraints) ==\n")
	names := modelNames(cfg.Models)
	tb := newTable(append([]string{"Technique"}, shortNames(names)...)...)
	for _, tech := range techniqueOrder(c) {
		row := []string{tech}
		for _, m := range names {
			if r := c.Get(tech, m); r != nil {
				row = append(row, fmt.Sprintf("%.0f%%/%.0f%%",
					r.Trace.AreaPowerFraction()*100, r.Trace.FeasibleFraction()*100))
			} else {
				row = append(row, "")
			}
		}
		tb.add(row...)
	}
	tb.write(w)
}

// ReportTable3 renders the per-acquisition objective reduction (%), the
// Table 3 metric ("N/A" when no feasible solution was ever found).
func ReportTable3(cfg Config, c *Campaign) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Table3: objective reduction per acquisition attempt (%%) ==\n")
	names := modelNames(cfg.Models)
	tb := newTable(append([]string{"Technique"}, append(shortNames(names), "Average")...)...)
	for _, tech := range techniqueOrder(c) {
		row := []string{tech}
		sum, n := 0.0, 0
		for _, m := range names {
			r := c.Get(tech, m)
			if r == nil {
				row = append(row, "")
				continue
			}
			if r.Trace.Best == nil {
				row = append(row, "N/A")
				continue
			}
			red := r.Trace.ReductionPerAttempt()
			row = append(row, fmt.Sprintf("%.2f%%", red))
			sum += red
			n++
		}
		if n > 0 {
			row = append(row, fmt.Sprintf("%.2f%%", sum/float64(n)))
		} else {
			row = append(row, "N/A")
		}
		tb.add(row...)
	}
	tb.write(w)
}

// ReportEvalStats renders the evaluation-layer instrumentation of a
// campaign, aggregated per technique across models: unique design
// evaluations, memoized cache hits (with memo evictions), in-flight
// deduplications under the batch pool, layer-grain mapping-cache hits,
// warm-start probes, mapping-search trials against actual cost-model
// calls, evaluation wall time, batch-layer activity, budget-free
// repeat acquisitions, and recovered evaluation panics (non-zero means
// designs crashed the model but the campaign survived).
func ReportEvalStats(cfg Config, c *Campaign) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Evaluation-layer stats (summed over models) ==\n")
	tb := newTable("Technique", "Evals", "CacheHits", "Evict", "InflightDedup",
		"LayerHits", "PersistHits", "WarmProbes", "MapTrials", "CostCalls", "EvalWall",
		"Batches", "BatchPts", "Repeats", "Panics")
	for _, tech := range techniqueOrder(c) {
		var evals, hits, evict, dedups, lhits, phits, probes, repeats, panics int
		var trials, costCalls, batches, pts int64
		var wall time.Duration
		for _, r := range c.Runs {
			if r.Technique != tech {
				continue
			}
			evals += r.Stats.Evaluations
			hits += r.Stats.CacheHits
			evict += r.Stats.Evictions
			dedups += r.Stats.InflightDedups
			lhits += r.Stats.LayerHits
			phits += r.Stats.PersistHits
			probes += r.Stats.WarmProbes
			trials += r.Stats.MapTrials
			costCalls += r.Stats.CostCalls
			wall += r.Stats.EvalWall
			batches += r.Batch.Batches
			pts += r.Batch.Points
			repeats += r.Trace.RepeatSteps
			panics += r.Stats.PanicsRecovered + int(r.Batch.PanicsRecovered)
		}
		tb.add(tech,
			fmt.Sprintf("%d", evals),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%d", evict),
			fmt.Sprintf("%d", dedups),
			fmt.Sprintf("%d", lhits),
			fmt.Sprintf("%d", phits),
			fmt.Sprintf("%d", probes),
			fmt.Sprintf("%d", trials),
			fmt.Sprintf("%d", costCalls),
			fmt.Sprintf("%.2fs", wall.Seconds()),
			fmt.Sprintf("%d", batches),
			fmt.Sprintf("%d", pts),
			fmt.Sprintf("%d", repeats),
			fmt.Sprintf("%d", panics))
	}
	tb.write(w)

	// Latency distributions from the per-run metrics registries, merged per
	// technique: mapping-search time per layer, end-to-end time per unique
	// design evaluation, and wall time per candidate batch.
	fmt.Fprintf(w, "\n== Evaluation-layer latency (p50/p95/max, seconds) ==\n")
	ht := newTable("Technique", "LayerSearch", "DesignEval", "Batch")
	for _, tech := range techniqueOrder(c) {
		agg := obs.NewRegistry()
		for _, r := range c.Runs {
			if r.Technique == tech {
				agg.Merge(r.Metrics)
			}
		}
		ht.add(tech,
			fmtHist(agg.Histogram("eval_layer_search_seconds", nil)),
			fmtHist(agg.Histogram("eval_design_seconds", nil)),
			fmtHist(agg.Histogram("search_batch_seconds", nil)))
	}
	ht.write(w)
}

// fmtHist renders a latency histogram cell as p50/p95/max in seconds
// ("-" when the histogram recorded nothing).
func fmtHist(h *obs.Histogram) string {
	if h.Count() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3g/%.3g/%.3g", h.Quantile(0.50), h.Quantile(0.95), h.Max())
}

// Summary aggregates campaign-level headline numbers (the paper's abstract
// claims: latency ratio and iteration ratio of Explainable-DSE codesign
// over the black-box techniques).
type Summary struct {
	// LatencyRatioVsBest is geomean(best black-box latency /
	// Explainable-DSE latency) over models where both found solutions.
	LatencyRatioVsBest float64
	// IterRatio is the geomean iterations-to-comparable-quality ratio:
	// per baseline, the run delivering the worse best is charged its
	// whole budget while the better run is charged only the unique
	// evaluations it spent to first match that quality
	// (Trace.EvalsToReach). Budget accounting charges unique designs
	// only, so every completed run spends the same total budget and
	// convergence speed must be read from the traces, not totals.
	IterRatio float64
	// TimeRatio is geomean(black-box time / Explainable-DSE time).
	TimeRatio float64
}

// Summarize computes the headline ratios of a campaign against the named
// Explainable technique. Following the paper's comparison, the "other"
// techniques are the non-explainable ones only.
func Summarize(cfg Config, c *Campaign, explainableName string) Summary {
	return SummarizeVs(cfg, c, explainableName, func(tech string) bool {
		return !strings.Contains(tech, "ExplainableDSE")
	})
}

// SummarizeVs computes the headline ratios against the baseline techniques
// selected by the filter — e.g. only the codesign black-box techniques, the
// like-for-like comparison behind the paper's 103x search-time claim.
func SummarizeVs(cfg Config, c *Campaign, explainableName string, isBaseline func(string) bool) Summary {
	var latLog, iterLog, timeLog float64
	var latN, iterN, timeN int
	for _, m := range modelNames(cfg.Models) {
		ex := c.Get(explainableName, m)
		if ex == nil || ex.Trace.Best == nil {
			continue
		}
		bestOther := math.Inf(1)
		var nOthers int
		var otherTime, pairLog float64
		var pairN int
		for _, r := range c.Runs {
			if r.Model != m || !isBaseline(r.Technique) {
				continue
			}
			nOthers++
			otherTime += r.Elapsed.Seconds()
			if r.Trace.Best == nil {
				continue
			}
			if r.Trace.BestObjective() < bestOther {
				bestOther = r.Trace.BestObjective()
			}
			// Iterations-to-comparable-quality (the paper's §5
			// currency): the run that delivered the worse best is
			// charged its whole budget — that is what producing its
			// answer cost — while the better run is charged only the
			// unique evaluations it spent to first match that
			// quality.
			var rIters, exIters int
			if ex.Trace.BestObjective() <= r.Trace.BestObjective() {
				rIters = r.Evaluations
				exIters = ex.Trace.EvalsToReach(r.Trace.BestObjective())
			} else {
				rIters = r.Trace.EvalsToReach(ex.Trace.BestObjective())
				exIters = ex.Evaluations
			}
			if exIters > 0 && rIters > 0 {
				pairLog += math.Log(float64(rIters) / float64(exIters))
				pairN++
			}
		}
		if !math.IsInf(bestOther, 1) {
			latLog += math.Log(bestOther / ex.Trace.BestObjective())
			latN++
		}
		if pairN > 0 {
			iterLog += pairLog / float64(pairN)
			iterN++
		}
		if nOthers > 0 {
			timeLog += math.Log(otherTime / float64(nOthers) / math.Max(ex.Elapsed.Seconds(), 1e-9))
			timeN++
		}
	}
	s := Summary{LatencyRatioVsBest: 1, IterRatio: 1, TimeRatio: 1}
	if latN > 0 {
		s.LatencyRatioVsBest = math.Exp(latLog / float64(latN))
	}
	if iterN > 0 {
		s.IterRatio = math.Exp(iterLog / float64(iterN))
	}
	if timeN > 0 {
		s.TimeRatio = math.Exp(timeLog / float64(timeN))
	}
	return s
}

// techniqueOrder lists the campaign's techniques in first-seen order.
func techniqueOrder(c *Campaign) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range c.Runs {
		if !seen[r.Technique] {
			seen[r.Technique] = true
			out = append(out, r.Technique)
		}
	}
	return out
}

func shortNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = shortModel(n)
	}
	return out
}
