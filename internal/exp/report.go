package exp

import (
	"fmt"
	"io"
	"strings"
)

// table accumulates rows and renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// shortModel abbreviates model names for column headers.
func shortModel(name string) string {
	switch name {
	case "VisionTransformer":
		return "ViT"
	case "FasterRCNN-MobileNetV3":
		return "FasterRCNN"
	case "EfficientNetB0":
		return "EffNetB0"
	case "MobileNetV2":
		return "MobNetV2"
	}
	return name
}
