package exp

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"xdse/internal/eval"
	"xdse/internal/obs"
	"xdse/internal/search"
	"xdse/internal/workload"
)

// traceTechniques is the explainable roster across all three mapper modes —
// the acceptance surface for "kill-and-resume stays bit-identical with
// tracing on".
func traceTechniques() []Technique {
	return []Technique{
		explainable("ExplainableDSE-FixDF", eval.FixedDataflow),
		explainable("ExplainableDSE-Random", eval.RandomMappings),
		explainable("ExplainableDSE-Codesign", eval.PrunedMappings),
	}
}

// readTraceT loads a trace file, failing the test on I/O errors.
func readTraceT(t *testing.T, path string) []obs.Event {
	t.Helper()
	events, err := obs.ReadTrace(path, t.Logf)
	if err != nil {
		t.Fatalf("reading trace %s: %v", path, err)
	}
	return events
}

// assertEventPrefix checks that partial is a prefix of ref under the
// determinism projection (WallNs and Seq exempt).
func assertEventPrefix(t *testing.T, partial, ref []obs.Event) {
	t.Helper()
	if len(partial) > len(ref) {
		t.Fatalf("interrupted trace has %d events, reference %d — expected a prefix", len(partial), len(ref))
	}
	for i := range partial {
		if !partial[i].EqualDeterministic(ref[i]) {
			t.Fatalf("interrupted event %d diverges from reference:\n  got  %+v\n  want %+v", i, partial[i], ref[i])
		}
	}
}

// TestTraceKillAndResumeDeterminism is the observability half of the resume
// guarantee: with a JSONL trace sink attached, (a) attaching the sink does
// not change the acquisition sequence, (b) a killed run's event stream is a
// prefix of the uninterrupted reference, and (c) the resumed run — which
// re-executes deterministically, answering replayed designs from the journal
// — re-emits the full reference event stream, event for event.
func TestTraceKillAndResumeDeterminism(t *testing.T) {
	model := workload.ResNet18()
	for _, tech := range traceTechniques() {
		tech := tech
		t.Run(tech.Name, func(t *testing.T) {
			t.Parallel()
			cfg := resumeConfig()
			dir := t.TempDir()

			// Untraced baseline: proves the sink cannot perturb the search.
			plain := RunOne(context.Background(), cfg, tech, model, 0)
			if plain.Interrupted || plain.Err != "" {
				t.Fatalf("baseline run failed: %+v", plain.Err)
			}

			refPath := filepath.Join(dir, "ref.jsonl")
			refSink, err := obs.NewJSONLSink(refPath, obs.JSONLOptions{})
			if err != nil {
				t.Fatal(err)
			}
			tcfg := cfg
			tcfg.Trace = refSink
			ref := RunOne(context.Background(), tcfg, tech, model, 0)
			if err := refSink.Close(); err != nil {
				t.Fatal(err)
			}
			if ref.Interrupted || ref.Err != "" {
				t.Fatalf("reference run failed: %+v", ref.Err)
			}
			if ref.Trace.Fingerprint() != plain.Trace.Fingerprint() {
				t.Fatalf("attaching a trace sink changed the acquisition sequence:\n%s", ref.Trace.Diff(plain.Trace))
			}
			refEvents := readTraceT(t, refPath)
			if len(refEvents) == 0 {
				t.Fatal("reference run emitted no events")
			}

			// Kill mid-run at a unique-evaluation ordinal, then resume.
			ctx, cancel := context.WithCancel(context.Background())
			kcfg := cfg
			kcfg.CheckpointDir = filepath.Join(dir, "ckpt")
			killPath := filepath.Join(dir, "killed.jsonl")
			killSink, err := obs.NewJSONLSink(killPath, obs.JSONLOptions{})
			if err != nil {
				t.Fatal(err)
			}
			kcfg.Trace = killSink
			kcfg.Faults = &eval.FaultPolicy{OnEvaluation: func(ord int) {
				if ord == 3 {
					cancel()
				}
			}}
			killed := RunOne(ctx, kcfg, tech, model, 0)
			cancel()
			if err := killSink.Close(); err != nil {
				t.Fatal(err)
			}
			if !killed.Interrupted {
				t.Fatal("run not marked Interrupted")
			}
			assertEventPrefix(t, readTraceT(t, killPath), refEvents)

			resPath := filepath.Join(dir, "resumed.jsonl")
			resSink, err := obs.NewJSONLSink(resPath, obs.JSONLOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rcfg := cfg
			rcfg.CheckpointDir = kcfg.CheckpointDir
			rcfg.Resume = true
			rcfg.Trace = resSink
			resumed := RunOne(context.Background(), rcfg, tech, model, 0)
			if err := resSink.Close(); err != nil {
				t.Fatal(err)
			}
			if resumed.Interrupted || resumed.Err != "" {
				t.Fatalf("resumed run failed: %+v", resumed.Err)
			}
			if resumed.Trace.Fingerprint() != ref.Trace.Fingerprint() {
				t.Errorf("resumed trace diverges from reference:\n%s", resumed.Trace.Diff(ref.Trace))
			}
			resEvents := readTraceT(t, resPath)
			if len(resEvents) != len(refEvents) {
				t.Fatalf("resumed run emitted %d events, reference %d", len(resEvents), len(refEvents))
			}
			for i := range refEvents {
				if !resEvents[i].EqualDeterministic(refEvents[i]) {
					t.Fatalf("resumed event %d diverges:\n  got  %+v\n  want %+v", i, resEvents[i], refEvents[i])
				}
			}
		})
	}
}

// TestCampaignTraceAndMetrics wires a campaign through Config.Trace and
// Config.Metrics end to end: events from every run land labeled in one JSONL
// file, the merged registry matches the summed per-run Stats, and the
// Prometheus dump validates.
func TestCampaignTraceAndMetrics(t *testing.T) {
	cfg := resumeConfig()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := obs.NewJSONLSink(path, obs.JSONLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = sink
	cfg.Metrics = obs.NewRegistry()
	cfg.Parallel = 2
	techs := traceTechniques()[:2]
	c := RunCampaign(context.Background(), cfg, techs, cfg.Models, 0)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events := readTraceT(t, path)
	seenRuns := map[string]bool{}
	for _, ev := range events {
		if ev.Run == "" {
			t.Fatalf("campaign event missing run label: %+v", ev)
		}
		seenRuns[ev.Run] = true
	}
	if len(seenRuns) != len(techs) {
		t.Errorf("events from %d runs, want %d: %v", len(seenRuns), len(techs), seenRuns)
	}

	var wantEvals int64
	for _, r := range c.Runs {
		wantEvals += int64(r.Stats.Evaluations)
	}
	if got := cfg.Metrics.Counter("eval_design_evaluations_total").Value(); got != wantEvals {
		t.Errorf("merged registry evaluations = %d, summed run stats = %d", got, wantEvals)
	}
	if cfg.Metrics.Histogram("eval_layer_search_seconds", nil).Count() == 0 {
		t.Error("merged registry recorded no layer-search latencies")
	}

	var b bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus(b.String()); err != nil {
		t.Errorf("campaign metrics dump malformed: %v", err)
	}
}

// TestReportEvalStatsGolden pins the evaluation-stats report rendering,
// histogram columns included, against a synthetic campaign with fully
// deterministic counters and latency observations.
func TestReportEvalStatsGolden(t *testing.T) {
	mkReg := func(layer, design, batch float64) *obs.Registry {
		reg := obs.NewRegistry()
		reg.Histogram("eval_layer_search_seconds", nil).Observe(layer)
		reg.Histogram("eval_design_seconds", nil).Observe(design)
		reg.Histogram("search_batch_seconds", nil).Observe(batch)
		return reg
	}
	c := &Campaign{Runs: []Run{
		{
			Technique: "TechA", Model: "M1",
			Trace: &search.Trace{RepeatSteps: 2},
			Stats: eval.Stats{
				Evaluations: 10, CacheHits: 4, Evictions: 1, InflightDedups: 3,
				LayerHits: 20, PersistHits: 7, WarmProbes: 5, MapTrials: 1000, CostCalls: 800,
				EvalWall: 1500 * time.Millisecond, PanicsRecovered: 1,
			},
			Batch:   search.BatchReport{Batches: 6, Points: 24},
			Metrics: mkReg(0.5, 0.5, 0.5),
		},
		{
			Technique: "TechB", Model: "M1",
			Trace:   &search.Trace{},
			Stats:   eval.Stats{Evaluations: 8, MapTrials: 640},
			Batch:   search.BatchReport{Batches: 8, Points: 8, PanicsRecovered: 2},
			Metrics: mkReg(0.25, 0.25, 0.25),
		},
	}}
	var buf bytes.Buffer
	cfg := Default()
	cfg.Out = &buf
	ReportEvalStats(cfg, c)
	const golden = `
== Evaluation-layer stats (summed over models) ==
Technique  Evals  CacheHits  Evict  InflightDedup  LayerHits  PersistHits  WarmProbes  MapTrials  CostCalls  EvalWall  Batches  BatchPts  Repeats  Panics
---------  -----  ---------  -----  -------------  ---------  -----------  ----------  ---------  ---------  --------  -------  --------  -------  ------
TechA      10     4          1      3              20         7            5           1000       800        1.50s     6        24        2        1
TechB      8      0          0      0              0          0            0           640        0          0.00s     8        8         0        2

== Evaluation-layer latency (p50/p95/max, seconds) ==
Technique  LayerSearch     DesignEval      Batch
---------  --------------  --------------  --------------
TechA      0.5/0.5/0.5     0.5/0.5/0.5     0.5/0.5/0.5
TechB      0.25/0.25/0.25  0.25/0.25/0.25  0.25/0.25/0.25
`
	if buf.String() != golden {
		t.Errorf("report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), golden)
	}
}
