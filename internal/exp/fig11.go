package exp

import (
	"context"
	"fmt"
	"math"

	"xdse/internal/workload"
)

// RunFig11 reproduces Fig. 11: latency reduction over iterations for
// EfficientNetB0 (CV) and Transformer (NLP) across the technique roster.
func RunFig11(ctx context.Context, cfg Config) *Campaign {
	cfg.Models = []*workload.Model{workload.EfficientNetB0(), workload.Transformer()}
	techs := []Technique{}
	for _, t := range AllTechniques() {
		switch t.Name {
		case "RandomSearch-FixDF", "HyperMapper2.0-FixDF", "ExplainableDSE-FixDF",
			"RandomSearch-Codesign", "HyperMapper2.0-Codesign", "ExplainableDSE-Codesign":
			techs = append(techs, t)
		}
	}
	return RunCampaign(ctx, cfg, techs, cfg.Models, 0)
}

// fig11Checkpoints returns the iteration counts at which the best-so-far
// curve is sampled.
func fig11Checkpoints(budget int) []int {
	base := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2500}
	var out []int
	for _, c := range base {
		if c <= budget {
			out = append(out, c)
		}
	}
	if len(out) == 0 || out[len(out)-1] != budget {
		out = append(out, budget)
	}
	return out
}

// ReportFig11 renders the best-so-far latency at exponential checkpoints.
func ReportFig11(cfg Config, c *Campaign) {
	w := cfg.out()
	for _, model := range []string{"EfficientNetB0", "Transformer"} {
		fmt.Fprintf(w, "\n== Fig11: best-so-far latency (ms) over iterations — %s ==\n", model)
		budget := 0
		for _, tech := range techniqueOrder(c) {
			if r := c.Get(tech, model); r != nil && len(r.Trace.Steps) > budget {
				budget = len(r.Trace.Steps)
			}
		}
		cps := fig11Checkpoints(budget)
		header := []string{"Technique"}
		for _, cp := range cps {
			header = append(header, fmt.Sprintf("@%d", cp))
		}
		tb := newTable(header...)
		for _, tech := range techniqueOrder(c) {
			r := c.Get(tech, model)
			if r == nil {
				continue
			}
			row := []string{tech}
			for _, cp := range cps {
				row = append(row, bestAt(r, cp))
			}
			tb.add(row...)
		}
		tb.write(w)
	}
}

// bestAt returns the best-so-far objective after `iters` acquisitions.
func bestAt(r *Run, iters int) string {
	best := math.Inf(1)
	for _, s := range r.Trace.Steps {
		if s.Iter >= iters {
			break
		}
		best = s.BestSoFar
	}
	if math.IsInf(best, 1) {
		return "-"
	}
	return fmt.Sprintf("%.1f", best)
}
