package exp

import (
	"context"
	"fmt"

	"xdse/internal/workload"
)

// RunFig3 reproduces Fig. 3: effectiveness of non-explainable vs
// explainable DSE on the EfficientNetB0 edge-accelerator exploration —
// (a) efficiency (best latency), (b) feasibility of evaluated solutions,
// and (c) agility (exploration time).
func RunFig3(ctx context.Context, cfg Config) *Campaign {
	cfg.Models = []*workload.Model{workload.EfficientNetB0()}
	return RunCampaign(ctx, cfg, AllTechniques(), cfg.Models, 0)
}

// ReportFig3 renders the three panels as one table.
func ReportFig3(cfg Config, c *Campaign) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Fig3: (a) efficiency, (b) feasibility, (c) agility — EfficientNetB0 ==\n")
	tb := newTable("Technique", "BestLatency(ms)", "Feasible(a+p)", "Feasible(all)", "Time(s)", "Designs")
	for _, tech := range techniqueOrder(c) {
		r := c.Get(tech, "EfficientNetB0")
		if r == nil {
			continue
		}
		tb.add(tech,
			fmtLatency(r.Trace),
			fmt.Sprintf("%.0f%%", r.Trace.AreaPowerFraction()*100),
			fmt.Sprintf("%.0f%%", r.Trace.FeasibleFraction()*100),
			fmt.Sprintf("%.1f", r.Elapsed.Seconds()),
			fmt.Sprintf("%d", r.Evaluations),
		)
	}
	tb.write(w)
}
