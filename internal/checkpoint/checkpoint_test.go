package checkpoint

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xdse/internal/search"
)

// costsFor fabricates a distinguishable Costs for key index i, exercising
// both feasible and errored shapes.
func costsFor(i int) search.Costs {
	if i%3 == 0 {
		return search.ErroredCosts(fmt.Sprintf("fault %d", i))
	}
	return search.Costs{
		Objective:      1.5 * float64(i),
		Feasible:       i%2 == 0,
		MeetsAreaPower: true,
		BudgetUtil:     0.25 * float64(i),
		Violations:     i % 4,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), costsFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Replayed()
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Step != i || r.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, r.Step, r.Key, i, fmt.Sprintf("k%d", i))
		}
		want := costsFor(i)
		want.Raw = nil
		if r.Costs != want {
			t.Fatalf("record %d costs = %+v, want %+v", i, r.Costs, want)
		}
	}
}

func TestJournalInfNaNRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]search.Costs{
		"posinf":  {Objective: math.Inf(1), BudgetUtil: 1e6, Violations: 1},
		"neginf":  {Objective: math.Inf(-1)},
		"nan":     {Objective: math.NaN()},
		"negzero": {Objective: math.Copysign(0, -1), Feasible: true},
		"tiny":    {Objective: 5e-324, BudgetUtil: math.Nextafter(1, 2), Feasible: true},
	}
	for k, c := range cases {
		if err := j.Append(k, c); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(cases) {
		t.Fatalf("loaded %d records, want %d", len(recs), len(cases))
	}
	for _, r := range recs {
		want := cases[r.Key]
		if math.Float64bits(r.Costs.Objective) != math.Float64bits(want.Objective) {
			t.Errorf("%s: objective bits %016x, want %016x", r.Key,
				math.Float64bits(r.Costs.Objective), math.Float64bits(want.Objective))
		}
		if math.Float64bits(r.Costs.BudgetUtil) != math.Float64bits(want.BudgetUtil) {
			t.Errorf("%s: budget bits differ", r.Key)
		}
	}
}

func TestJournalDedupByKey(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append("same", costsFor(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append("other", costsFor(2)); err != nil {
		t.Fatal(err)
	}
	if got := j.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "same" || recs[1].Key != "other" {
		t.Fatalf("loaded %v", recs)
	}
}

// TestJournalTornTrailingWrite simulates a hard kill mid-write by truncating
// the journal at every byte offset inside its final line and verifying that
// load always recovers exactly the intact prefix, warning instead of failing.
func TestJournalTornTrailingWrite(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), costsFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalFile)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the last line starts.
	body := strings.TrimSuffix(string(whole), "\n")
	lastStart := strings.LastIndexByte(body, '\n') + 1

	for cut := lastStart + 1; cut < len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		warned := 0
		recs, err := Load(dir, func(string, ...any) { warned++ })
		if err != nil {
			t.Fatalf("cut=%d: load failed: %v", cut, err)
		}
		if len(recs) != n-1 {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(recs), n-1)
		}
		if warned == 0 {
			t.Fatalf("cut=%d: expected a torn-write warning", cut)
		}
	}
	// Full file restored: all n records come back with no warning.
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(dir, func(format string, args ...any) {
		t.Errorf("unexpected warning: "+format, args...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("recovered %d records from intact file, want %d", len(recs), n)
	}
}

// TestJournalCorruptMidline flips a payload byte in the middle line and
// verifies the CRC catches it: that line and everything after is dropped.
func TestJournalCorruptMidline(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), costsFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Corrupt a byte inside the second line's JSON payload.
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0xff
	lines[1] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	warned := 0
	recs, err := Load(dir, func(string, ...any) { warned++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "k0" {
		t.Fatalf("recovered %v, want only k0", recs)
	}
	if warned == 0 {
		t.Fatal("expected a corruption warning")
	}
}

func TestJournalSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), costsFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Two snapshots should have happened (at 5 and 10); the journal tail
	// holds only the last 2 records.
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if got := strings.Count(string(snap), "\n"); got != 10 {
		t.Fatalf("snapshot has %d lines, want 10", got)
	}
	tail, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(tail), "\n"); got != 2 {
		t.Fatalf("journal tail has %d lines, want 2", got)
	}
	recs, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("loaded %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("record %d key = %q", i, r.Key)
		}
	}
}

// TestJournalSnapshotCrashOverlap simulates a crash between the snapshot
// rename and the journal truncation: the journal tail still duplicates
// snapshot content, and Load must dedup by key.
func TestJournalSnapshotCrashOverlap(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), costsFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Fake the crash window: copy the journal to the snapshot without
	// truncating the journal.
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("loaded %d records, want 4 (dedup failed)", len(recs))
	}
}

func TestJournalFresh(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), costsFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{Fresh: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Replayed()); got != 0 {
		t.Fatalf("Fresh open replayed %d records, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("Fresh open left snapshot behind (err=%v)", err)
	}
}

func TestJournalAppendAfterResume(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", costsFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Replayed key is deduped; a new key extends the sequence.
	if err := j2.Append("a", costsFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Append("b", costsFor(2)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "a" || recs[1].Key != "b" || recs[1].Step != 1 {
		t.Fatalf("loaded %+v", recs)
	}
}
