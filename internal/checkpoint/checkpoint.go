// Package checkpoint makes long exploration campaigns crash-safe: every
// unique design evaluation is appended to a per-run journal the moment it
// completes, so a killed run can resume without losing (or re-charging)
// evaluated designs. The journal is an append-only JSONL file whose lines
// carry a CRC32 and which is periodically compacted into an atomically
// renamed snapshot; a torn trailing write — the signature of a hard kill —
// is detected by the CRC and dropped with a warning rather than poisoning
// the resume.
//
// Resume model: the journal is a durable memo, not a program counter. A
// resumed run re-executes its (deterministic) optimizer from the start;
// journaled designs are answered from the replayed records instead of being
// recomputed, and the evaluator's unique-design accounting is pre-seeded
// with the journaled keys, so the resumed trace — steps, best solution, and
// budget spent — is bit-identical to an uninterrupted run's regardless of
// where the kill landed.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"xdse/internal/search"
)

// journalFile and snapshotFile name the two on-disk halves of a checkpoint
// directory: the append-only tail and the last compacted prefix.
const (
	journalFile  = "journal.jsonl"
	snapshotFile = "snapshot.jsonl"
)

// Record is one journaled design evaluation: the design's point key, its
// scalar evaluation outcome, and the journal sequence number it was written
// at. The domain payload (Costs.Raw) is deliberately not persisted — replay
// rematerializes it on demand through the evaluator, which is deterministic.
type Record struct {
	// Step is the journal sequence number (0-based, unique per run).
	Step int
	// Key is the design point's cache key (arch.Point.Key).
	Key string
	// Costs is the evaluation outcome, with Raw stripped.
	Costs search.Costs
}

// line is the JSON wire form of a Record. Floats travel as hex-float
// strings (strconv 'x' format) so the round trip is bit-exact and ±Inf/NaN
// — legal objective values for unevaluable designs — survive, which plain
// JSON numbers cannot guarantee.
type line struct {
	Step       int    `json:"step"`
	Key        string `json:"key"`
	Objective  string `json:"obj"`
	Feasible   bool   `json:"feasible"`
	MeetsAP    bool   `json:"meets_ap"`
	BudgetUtil string `json:"budget"`
	Violations int    `json:"violations"`
	Err        string `json:"err,omitempty"`
}

// formatF renders a float for the journal: shortest hex form that parses
// back to the identical bits (Inf and NaN included).
func formatF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// parseF is the inverse of formatF.
func parseF(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// FrameLine renders payload as one journal line under this package's CRC
// discipline: eight lowercase hex digits of the payload's CRC32 (IEEE), a
// space, the payload, and a trailing newline. Other subsystems that journal
// through a checkpoint directory (the fleet coordinator's shard log) frame
// their lines with this so every journal in the tree shares one torn-write
// detection story.
func FrameLine(payload []byte) []byte {
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload))
}

// UnframeLine verifies one framed line (without its trailing newline) and
// returns the payload. A short line, malformed CRC field, or checksum
// mismatch — the signatures of a torn or corrupted write — is an error;
// callers treat it as end-of-intact-data, not as fatal.
func UnframeLine(text string) ([]byte, error) {
	if len(text) < 9 || text[8] != ' ' {
		return nil, fmt.Errorf("checkpoint: malformed line %q", truncateForErr(text))
	}
	want, err := strconv.ParseUint(text[:8], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: bad CRC field: %w", err)
	}
	payload := text[9:]
	if got := crc32.ChecksumIEEE([]byte(payload)); got != uint32(want) {
		return nil, fmt.Errorf("checkpoint: CRC mismatch (want %08x, got %08x)", want, got)
	}
	return []byte(payload), nil
}

// encode renders a Record as one CRC'd journal line (newline included).
func encode(r Record) ([]byte, error) {
	data, err := json.Marshal(line{
		Step:       r.Step,
		Key:        r.Key,
		Objective:  formatF(r.Costs.Objective),
		Feasible:   r.Costs.Feasible,
		MeetsAP:    r.Costs.MeetsAreaPower,
		BudgetUtil: formatF(r.Costs.BudgetUtil),
		Violations: r.Costs.Violations,
		Err:        r.Costs.Err,
	})
	if err != nil {
		return nil, err
	}
	return FrameLine(data), nil
}

// decode parses one journal line (without its trailing newline), verifying
// the CRC before trusting the payload.
func decode(text string) (Record, error) {
	payload, err := UnframeLine(text)
	if err != nil {
		return Record{}, err
	}
	var l line
	if err := json.Unmarshal(payload, &l); err != nil {
		return Record{}, fmt.Errorf("checkpoint: bad JSON: %w", err)
	}
	obj, err := parseF(l.Objective)
	if err != nil {
		return Record{}, fmt.Errorf("checkpoint: bad objective: %w", err)
	}
	budget, err := parseF(l.BudgetUtil)
	if err != nil {
		return Record{}, fmt.Errorf("checkpoint: bad budget: %w", err)
	}
	return Record{
		Step: l.Step,
		Key:  l.Key,
		Costs: search.Costs{
			Objective:      obj,
			Feasible:       l.Feasible,
			MeetsAreaPower: l.MeetsAP,
			BudgetUtil:     budget,
			Violations:     l.Violations,
			Err:            l.Err,
		},
	}, nil
}

// truncateForErr bounds corrupt-line excerpts embedded in error messages.
func truncateForErr(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}

// Options tunes a journal's durability/throughput trade-off.
type Options struct {
	// Fresh discards any existing journal in the directory instead of
	// resuming from it (a new run that happens to reuse a directory).
	Fresh bool
	// SyncEvery is the fsync cadence in appended records: the journal is
	// flushed and fsync'd after every SyncEvery-th append, bounding how
	// many evaluations a hard kill can lose. 0 selects the default (16);
	// negative syncs only on Flush/Close (fastest, weakest).
	SyncEvery int
	// SnapshotEvery compacts the full record set into an atomically
	// renamed snapshot (and truncates the journal tail) every N appends.
	// 0 selects the default (512); negative disables snapshotting.
	SnapshotEvery int
	// Warnf, when non-nil, receives non-fatal recovery warnings (torn or
	// CRC-failing lines dropped during load). The default discards them.
	Warnf func(format string, args ...any)
}

func (o Options) syncEvery() int {
	if o.SyncEvery == 0 {
		return 16
	}
	return o.SyncEvery
}

func (o Options) snapshotEvery() int {
	if o.SnapshotEvery == 0 {
		return 512
	}
	return o.SnapshotEvery
}

func (o Options) warnf(format string, args ...any) {
	if o.Warnf != nil {
		o.Warnf(format, args...)
	}
}

// Journal is one run's open checkpoint: the records replayed from disk at
// Open plus everything appended since. It is safe for concurrent Append
// from evaluation workers.
type Journal struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	seen      map[string]bool
	recs      []Record // full record set, snapshot source
	replayed  int      // how many of recs were loaded from disk at Open
	unsynced  int
	sinceSnap int
	closed    bool
}

// Open opens (creating if needed) the checkpoint directory for one run,
// loads every intact record unless opts.Fresh, and readies the journal for
// appends. Corrupt or torn trailing lines are dropped with a warning — the
// expected aftermath of a hard kill — never a fatal error.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if opts.Fresh {
		for _, name := range []string{snapshotFile, journalFile} {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
	}
	recs, err := Load(dir, opts.Warnf)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:      dir,
		opts:     opts,
		f:        f,
		w:        bufio.NewWriter(f),
		seen:     make(map[string]bool, len(recs)),
		recs:     recs,
		replayed: len(recs),
	}
	for _, r := range recs {
		j.seen[r.Key] = true
	}
	return j, nil
}

// Load reads every intact record from a checkpoint directory (snapshot
// first, then the journal tail), deduplicated by design key with the first
// occurrence winning. A line that is truncated or fails its CRC — and
// everything after it in that file — is dropped via warnf; Load only errors
// on I/O failures, never on corrupt content.
func Load(dir string, warnf func(format string, args ...any)) ([]Record, error) {
	warn := func(format string, args ...any) {
		if warnf != nil {
			warnf(format, args...)
		}
	}
	var recs []Record
	seen := make(map[string]bool)
	for _, name := range []string{snapshotFile, journalFile} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		rest := string(data)
		lineNo := 0
		for rest != "" {
			lineNo++
			text, tail, complete := strings.Cut(rest, "\n")
			if !complete {
				warn("checkpoint: %s/%s line %d: torn write (no newline), dropping", dir, name, lineNo)
				break
			}
			rest = tail
			rec, err := decode(text)
			if err != nil {
				warn("checkpoint: %s/%s line %d: %v — dropping this and later lines", dir, name, lineNo, err)
				break
			}
			if seen[rec.Key] {
				continue
			}
			seen[rec.Key] = true
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

// Dir returns the checkpoint directory this journal persists into.
func (j *Journal) Dir() string { return j.dir }

// Replayed returns the records that were loaded from disk when the journal
// was opened — the resume set. The returned slice is shared; callers must
// not mutate it.
func (j *Journal) Replayed() []Record { return j.recs[:j.replayed] }

// Len returns the total number of records (replayed plus appended).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Append journals one completed design evaluation. Appends are deduplicated
// by key — re-acquisitions of memoized designs are free in the budget and
// therefore absent from the journal. Safe for concurrent use.
func (j *Journal) Append(key string, c search.Costs) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("checkpoint: append to closed journal")
	}
	if j.seen[key] {
		return nil
	}
	c.Raw = nil
	rec := Record{Step: len(j.recs), Key: key, Costs: c}
	data, err := encode(rec)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	j.seen[key] = true
	j.recs = append(j.recs, rec)
	j.unsynced++
	j.sinceSnap++
	if n := j.opts.syncEvery(); n > 0 && j.unsynced >= n {
		if err := j.flushLocked(); err != nil {
			return err
		}
	}
	if n := j.opts.snapshotEvery(); n > 0 && j.sinceSnap >= n {
		if err := j.snapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// flushLocked drains the buffer and fsyncs the journal. Caller holds j.mu.
func (j *Journal) flushLocked() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.unsynced = 0
	return nil
}

// Flush forces buffered records to stable storage (the shutdown path).
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.flushLocked()
}

// snapshotLocked compacts the full record set into snapshotFile via
// write-temp + fsync + atomic rename, then truncates the journal tail. A
// crash at any point leaves either the old snapshot + full journal or the
// new snapshot (+ a possibly duplicated tail, which Load dedups). Caller
// holds j.mu.
func (j *Journal) snapshotLocked() error {
	if err := j.flushLocked(); err != nil {
		return err
	}
	tmpPath := filepath.Join(j.dir, snapshotFile+".tmp")
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	for _, r := range j.recs {
		data, err := encode(r)
		if err == nil {
			_, err = bw.Write(data)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(j.dir, snapshotFile)); err != nil {
		return err
	}
	// Truncate the journal tail: its content now lives in the snapshot.
	if err := j.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(j.dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.sinceSnap = 0
	return nil
}

// Close flushes, fsyncs, and closes the journal. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
