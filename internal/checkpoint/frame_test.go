package checkpoint

import (
	"strings"
	"testing"
)

// TestFrameLineRoundTrip: every payload survives the CRC'd line discipline —
// including empty, whitespace-bearing, and non-ASCII payloads — and the wire
// form is exactly "crc8hex space payload newline".
func TestFrameLineRoundTrip(t *testing.T) {
	for _, payload := range []string{
		"",
		"{}",
		`{"op":"done","points":["p1","p2"]}`,
		"payload with spaces",
		"unicodé ✓ bytes",
	} {
		line := FrameLine([]byte(payload))
		if len(line) == 0 || line[len(line)-1] != '\n' {
			t.Fatalf("FrameLine(%q) missing trailing newline: %q", payload, line)
		}
		text := string(line[:len(line)-1])
		if len(text) < 9 || text[8] != ' ' {
			t.Fatalf("FrameLine(%q) wire shape wrong: %q", payload, text)
		}
		got, err := UnframeLine(text)
		if err != nil {
			t.Fatalf("UnframeLine(FrameLine(%q)): %v", payload, err)
		}
		if string(got) != payload {
			t.Fatalf("round trip of %q returned %q", payload, got)
		}
	}
}

func TestUnframeLineRejects(t *testing.T) {
	good := string(FrameLine([]byte(`{"ok":true}`)))
	good = strings.TrimSuffix(good, "\n")
	cases := map[string]string{
		"too short":        "abc",
		"no space":         good[:8] + "_" + good[9:],
		"bad hex":          "zzzzzzzz " + good[9:],
		"crc mismatch":     good[:9] + `{"ok":false}`,
		"payload bit flip": good[:len(good)-1] + "x",
	}
	for name, text := range cases {
		if _, err := UnframeLine(text); err == nil {
			t.Errorf("%s: UnframeLine(%q) accepted", name, text)
		}
	}
}
