package main

import (
	"context"
	"strings"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/exp"
	"xdse/internal/workload"
)

func TestParseDesignDefaultsToMidRange(t *testing.T) {
	space := arch.EdgeSpace()
	pt, err := parseDesign(space, "")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range space.Params {
		if pt[i] != len(p.Values)/2 {
			t.Fatalf("%s default index = %d", p.Name, pt[i])
		}
	}
}

func TestParseDesignOverrides(t *testing.T) {
	space := arch.EdgeSpace()
	pt, err := parseDesign(space, "PEs=512, L2_KB=1000")
	if err != nil {
		t.Fatal(err)
	}
	d := space.MustDecode(pt)
	if d.PEs != 512 {
		t.Fatalf("PEs = %d", d.PEs)
	}
	if d.L2KB != 1024 { // rounded up to the nearest legal value
		t.Fatalf("L2 = %d", d.L2KB)
	}
}

func TestParseDesignErrors(t *testing.T) {
	space := arch.EdgeSpace()
	for name, spec := range map[string]string{
		"unknown param": "bogus=3",
		"no equals":     "PEs",
		"bad value":     "PEs=lots",
	} {
		if _, err := parseDesign(space, spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunExploreRejectsBadMode(t *testing.T) {
	cfg := testConfig()
	if err := runExplore(context.Background(), cfg, "", "warp", true); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("bad mode accepted: %v", err)
	}
}

func TestRunExploreRejectsMissingSpec(t *testing.T) {
	cfg := testConfig()
	if err := runExplore(context.Background(), cfg, "/nonexistent/spec", "fixdf", true); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

// testConfig builds a tiny config for the CLI helper tests.
func testConfig() exp.Config {
	cfg := exp.Default()
	cfg.Budget = 5
	cfg.Models = []*workload.Model{workload.ResNet18()}
	return cfg
}
