package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xdse/internal/eval"
	"xdse/internal/fleet"
	"xdse/internal/obs"
	"xdse/internal/serve"
)

// runServe implements `xdse serve`: the long-running DSE job daemon. Jobs
// are submitted as JSON over HTTP (POST /jobs), executed under per-job
// deadlines with transient-fault retries, and journaled so that a SIGTERM —
// or a hard crash — never loses work: the daemon drains gracefully and the
// next invocation over the same -dir resumes every unfinished job to a
// bit-identical result.
func runServe(args []string) int {
	fs := flag.NewFlagSet("xdse serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		dir          = fs.String("dir", "xdse-jobs", "job root directory (state, checkpoints, CSV traces); rescanned at boot to resume unfinished jobs")
		queueCap     = fs.Int("queue-cap", 16, "admission queue capacity; submissions beyond it are shed with 429 + Retry-After")
		maxConc      = fs.Int("max-concurrent", 2, "jobs executing concurrently")
		maxWorkers   = fs.Int("max-job-workers", 4, "per-job evaluation worker-pool ceiling (job specs are clamped to it)")
		deadline     = fs.Duration("deadline", 0, "default per-job wall-clock deadline for jobs that set none (0 = unbounded)")
		evalTimeout  = fs.Duration("eval-timeout", 0, "per-evaluation watchdog; timeouts classify transient and are retried (0 = disabled)")
		retries      = fs.Int("retries", 3, "max attempts per evaluation for transient faults (1 = no retries)")
		retryBackoff = fs.Duration("retry-backoff", 10*time.Millisecond, "base delay before a retry, doubling per attempt")
		retryAfter   = fs.Duration("retry-after", 2*time.Second, "Retry-After hint attached to shed and draining responses")
		drainTimeout = fs.Duration("drain-timeout", 2*time.Minute, "how long a shutdown signal waits for in-flight jobs to checkpoint")
		cacheDir     = fs.String("cache-dir", "", "persistent evaluation-cache directory shared by every job (and by later daemon incarnations); empty = uncached")
		evalConc     = fs.Int("eval-concurrent", 2, "fleet shards served concurrently (POST /eval); excess requests are shed with 429 + Retry-After")
		traceOut     = fs.String("trace-out", "", "write this worker's span events (traced /eval and /cache fetches) to this JSONL file")
		chaosSpec    = fs.String("chaos", "", "worker-side deterministic chaos spec for POST /eval (e.g. \"storm@0-3=503,corrupt@5\"); see internal/fleet.ParseChaosSpec")
		debug        = fs.Bool("debug", false, "mount the runtime profiling surface (/debug/pprof/*, /debug/vars); off by default as it exposes process internals")
		runtimeSamp  = fs.Duration("runtime-sample", 0, "runtime sampler cadence for /metrics (goroutines, heap, GC pauses); 0 = 10s default, negative disables")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: xdse serve [flags]\n")
		return 2
	}

	var traceSink *obs.JSONLSink
	if *traceOut != "" {
		ts, err := obs.NewJSONLSink(*traceOut, obs.JSONLOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdse serve: %v\n", err)
			return 1
		}
		traceSink = ts
	}

	chaos, err := fleet.ParseChaosSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdse serve: -chaos: %v\n", err)
		return 2
	}
	s, err := serve.New(serve.Options{
		Dir:             *dir,
		QueueCap:        *queueCap,
		MaxConcurrent:   *maxConc,
		MaxJobWorkers:   *maxWorkers,
		DefaultDeadline: *deadline,
		RetryAfter:      *retryAfter,
		EvalTimeout:     *evalTimeout,
		Retry:           eval.RetryPolicy{MaxAttempts: *retries, Backoff: *retryBackoff},
		CacheDir:        *cacheDir,
		EvalConcurrent:  *evalConc,
		Chaos:           chaos,
		ChaosSelf:       *addr,
		Trace:           sinkOrNil(traceSink),
		Debug:           *debug,
		RuntimeSample:   *runtimeSamp,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdse serve: %v\n", err)
		return 1
	}
	if err := s.Start(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "xdse serve: %v\n", err)
		return 1
	}
	fmt.Printf("xdse serve: listening on %s, jobs under %s\n", s.Addr(), *dir)

	// SIGTERM/SIGINT start the graceful drain: readiness flips to 503,
	// in-flight jobs checkpoint at their next batch boundary, and the
	// process exits 0 so orchestrators treat the shutdown as clean. A
	// drain overrunning -drain-timeout exits 1 instead.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Printf("xdse serve: %v received, draining (timeout %v)\n", sig, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "xdse serve: %v\n", err)
		return 1
	}
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "xdse serve: trace: %v\n", err)
		}
	}
	fmt.Printf("xdse serve: drained; unfinished jobs resume on next start over %s\n", *dir)
	return 0
}

// sinkOrNil converts a possibly-nil *JSONLSink to the obs.Sink interface
// without producing a non-nil interface wrapping a nil pointer (the classic
// typed-nil trap: serve would then think tracing is on).
func sinkOrNil(s *obs.JSONLSink) obs.Sink {
	if s == nil {
		return nil
	}
	return s
}
