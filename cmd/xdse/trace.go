package main

import (
	"flag"
	"fmt"
	"os"

	"xdse/internal/obs"
)

// runTrace implements `xdse trace [-top N] [-run NAME] [-chrome FILE]
// <trace.jsonl>`: it reads a span-carrying trace (a campaign's -trace-out, a
// coordinator's merged cross-process trace, or a worker's own file) and
// renders the critical-path report — longest span chain per trace, top-N
// self-time by span kind, and the per-worker queue/compute/transfer
// breakdown. -chrome additionally exports the spans as Chrome trace_event
// JSON, loadable in Perfetto or chrome://tracing.
//
// Parent-link validation is part of rendering: a merged trace with a
// dangling parent, duplicate span ID, or parent cycle fails loudly here,
// which is what the CI trace-smoke gate relies on. A torn tail (truncated
// final record) renders the intact prefix but exits non-zero, matching
// `xdse report`.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("xdse trace", flag.ExitOnError)
	topN := fs.Int("top", 5, "how many span kinds to rank in the self-time summary")
	runFilter := fs.String("run", "", "report only spans of this run label")
	chromeOut := fs.String("chrome", "", "also write the spans as Chrome trace_event JSON to this file (view in Perfetto)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: xdse trace [-top N] [-run NAME] [-chrome FILE] <trace.jsonl>\n")
		return 2
	}
	warnf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "xdse trace: "+format+"\n", a...)
	}
	events, torn, err := obs.ReadTraceChecked(fs.Arg(0), warnf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdse trace: %v\n", err)
		return 1
	}
	events = filterEvents(events, *runFilter, 0)
	if err := obs.WriteTraceReport(os.Stdout, events, *topN); err != nil {
		fmt.Fprintf(os.Stderr, "xdse trace: %v\n", err)
		return 1
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdse trace: %v\n", err)
			return 1
		}
		werr := obs.WriteChromeTrace(f, events)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			if werr == nil {
				werr = cerr
			}
			fmt.Fprintf(os.Stderr, "xdse trace: chrome export: %v\n", werr)
			return 1
		}
		fmt.Printf("chrome trace written to %s\n", *chromeOut)
	}
	if torn {
		fmt.Fprintf(os.Stderr, "xdse trace: trace tail truncated mid-record; report above covers the intact prefix only\n")
		return 1
	}
	return 0
}
