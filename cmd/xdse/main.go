// Command xdse regenerates the tables and figures of the Explainable-DSE
// paper (ASPLOS'23) on this repository's substrates. Each -exp value maps
// to one experiment of the per-experiment index in DESIGN.md; budgets are
// reduced by default and restored to paper scale with -full (or
// XDSE_FULL=1).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/exp"
	"xdse/internal/fleet"
	"xdse/internal/obs"
	"xdse/internal/workload"
)

func main() {
	// `xdse report <trace.jsonl>` is a subcommand, not a flag: it reads a
	// -trace-out file back and renders the explanation timeline.
	if len(os.Args) > 1 && os.Args[1] == "report" {
		os.Exit(runReport(os.Args[2:]))
	}
	// `xdse trace` reads the same file back and renders the distributed
	// tracing view: critical paths, self-time by span kind, per-worker
	// queue/compute breakdowns, and Chrome trace_event export.
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		os.Exit(runTrace(os.Args[2:]))
	}
	// `xdse serve` runs the long-lived DSE job daemon (see internal/serve).
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(runServe(os.Args[2:]))
	}
	// `xdse cache-gc` retires cold records from a persistent evaluation
	// cache by last-access age (see internal/evalcache).
	if len(os.Args) > 1 && os.Args[1] == "cache-gc" {
		os.Exit(runCacheGC(os.Args[2:]))
	}
	var (
		expName  = flag.String("exp", "fig3", "experiment: fig3|fig4|fig9|fig10|fig11|fig12|table2|table3|table7|fig14|fig15|ablation|energy|multiworkload|joint|all")
		full     = flag.Bool("full", false, "use the paper-scale budgets (2500 iterations, 10000 mapping trials)")
		budget   = flag.Int("budget", 0, "override the static iteration budget")
		seed     = flag.Int64("seed", 1, "random seed")
		models   = flag.String("models", "", "comma-separated model filter (default: full 11-model suite)")
		modelFn  = flag.String("modelfile", "", "workload definition file (see workload.ParseModel) used instead of the built-in suite")
		csvDir   = flag.String("csvdir", "", "directory for per-run CSV acquisition traces (created if missing)")
		explore  = flag.Bool("explore", false, "run one explained Explainable-DSE exploration instead of an experiment")
		mapOnly  = flag.Bool("map", false, "map the selected models onto one fixed design and print per-layer breakdowns")
		design   = flag.String("design", "", "-map design as comma-separated name=value pairs over the space parameters (defaults per parameter: mid-range)")
		spec     = flag.String("spec", "", "design-space specification file for -explore (default: the Table 1 edge space)")
		mode     = flag.String("mode", "fixdf", "-explore mapper mode: fixdf|codesign")
		quiet    = flag.Bool("quiet", false, "-explore: suppress the per-attempt reasoning log")
		workers  = flag.Int("workers", 0, "batch-evaluation worker pool size per run (0 = evaluator default, 1 = serial; results are identical for any value)")
		parallel = flag.Int("parallel", 1, "concurrent optimizer runs per campaign (results are identical for any value)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
		memProf  = flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
		ckptDir  = flag.String("checkpoint", "", "checkpoint directory: journal every run's evaluations there so a killed campaign is resumable")
		cacheDir = flag.String("cache-dir", "", "persistent evaluation-cache directory shared across runs: repeated layer searches answer from disk with bit-identical results")
		resume   = flag.Bool("resume", false, "resume from the journals in -checkpoint instead of starting fresh")
		traceOut = flag.String("trace-out", "", "write every run's structured explanation events to this JSONL file (read back with `xdse report`)")
		metrsOut = flag.String("metrics-out", "", "write the campaign's merged metrics to this file in Prometheus text format")
		fleetWrk = flag.String("fleet-workers", "", "comma-separated `xdse serve` worker addresses (host:port,...): shard evaluation batches across them; results stay bit-identical to a local run under any worker failure")
		fleetHI  = flag.Duration("fleet-health-interval", 0, "fleet worker health-probe cadence (0 = 1s default)")
		fleetHA  = flag.Duration("fleet-hedge-after", 0, "hedge a straggling shard dispatch to the next ring candidate after this long (0 = LeaseTTL/2 default, negative disables)")
		fleetBK  = flag.Int("fleet-breaker", 0, "consecutive transient faults that open a worker's circuit breaker (0 = 3 default)")
		fleetCh  = flag.String("fleet-chaos", "", "coordinator-side deterministic chaos spec (e.g. \"drop@3,storm@0-4=503,partition@2-6=host:port\"); see internal/fleet.ParseChaosSpec")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the campaign context: every run stops at its
	// next batch boundary, checkpoints are flushed on the way out, and the
	// partial report still renders. A second signal kills hard.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		// Written on normal completion only; error paths exit directly.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			}
		}()
	}

	cfg := exp.FromEnv()
	if *full {
		cfg = exp.Full()
	}
	if *budget > 0 {
		cfg.Budget = *budget
		cfg.CodesignBudget = *budget
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Parallel = *parallel
	if *modelFn != "" {
		data, err := os.ReadFile(*modelFn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(1)
		}
		m, err := workload.ParseModel(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(1)
		}
		cfg.Models = []*workload.Model{m}
	} else if *models != "" {
		var ms []*workload.Model
		for _, name := range strings.Split(*models, ",") {
			m := workload.ByName(strings.TrimSpace(name))
			if m == nil {
				fmt.Fprintf(os.Stderr, "xdse: unknown model %q\n", name)
				os.Exit(2)
			}
			ms = append(ms, m)
		}
		cfg.Models = ms
	}
	cfg.Out = os.Stdout
	if *resume && *ckptDir == "" {
		fmt.Fprintf(os.Stderr, "xdse: -resume requires -checkpoint\n")
		os.Exit(2)
	}
	cfg.CheckpointDir = *ckptDir
	cfg.Resume = *resume
	cfg.CacheDir = *cacheDir
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(1)
		}
		cfg.CSVDir = *csvDir
	}

	// Distributed execution: shard evaluation batches across a worker fleet.
	// The coordinator is a pure cache warmer (see internal/fleet), so every
	// experiment below produces bit-identical results with or without it.
	var fleetCoord *fleet.Coordinator
	if *fleetWrk != "" {
		var addrs []string
		for _, a := range strings.Split(*fleetWrk, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		chaos, err := fleet.ParseChaosSpec(*fleetCh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdse: -fleet-chaos: %v\n", err)
			os.Exit(2)
		}
		fleetOpts := fleet.Options{
			HealthInterval:   *fleetHI,
			HedgeAfter:       *fleetHA,
			BreakerThreshold: *fleetBK,
			Chaos:            chaos,
			Warnf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "xdse: "+format+"\n", args...)
			},
		}
		if *ckptDir != "" {
			// The shard journal rides in the campaign checkpoint directory:
			// one -checkpoint flag makes both the evaluation trace and the
			// coordinator's shard state crash-durable, and one -resume
			// replays both.
			fleetOpts.JournalDir = filepath.Join(*ckptDir, "fleet")
			fleetOpts.Resume = *resume
		}
		c, err := fleet.New(addrs, fleetOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(2)
		}
		fleetCoord = c
		cfg.Fleet = c
	}

	// Observability outputs. finishObs is idempotent and must run on every
	// exit path that produced events — including the interrupted one, which
	// exits through os.Exit and therefore skips deferred closers.
	var traceSink *obs.JSONLSink
	if *traceOut != "" {
		s, err := obs.NewJSONLSink(*traceOut, obs.JSONLOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(1)
		}
		traceSink = s
		cfg.Trace = s
	}
	if *metrsOut != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	obsDone := false
	finishObs := func() {
		if obsDone {
			return
		}
		obsDone = true
		if traceSink != nil {
			if err := traceSink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "xdse: trace: %v\n", err)
			}
		}
		if fleetCoord != nil {
			fleetCoord.Close()
			// Permanent faults (4xx, model-version skew) are part of the
			// campaign report: they were not retried, by design.
			if faults := fleetCoord.Faults(); len(faults) > 0 {
				fmt.Fprintf(os.Stderr, "xdse: fleet recorded %d permanent fault(s):\n", len(faults))
				for _, f := range faults {
					fmt.Fprintf(os.Stderr, "xdse:   - %s\n", f)
				}
			}
			if cfg.Metrics != nil {
				// Merged exactly once, here, so multi-campaign invocations
				// (-exp all) never double-count the fleet instruments.
				cfg.Metrics.Merge(fleetCoord.Metrics())
			}
		}
		if cfg.Metrics != nil {
			if err := writeMetricsFile(*metrsOut, cfg.Metrics); err != nil {
				fmt.Fprintf(os.Stderr, "xdse: metrics: %v\n", err)
			}
		}
	}
	defer finishObs()

	if *mapOnly {
		if err := runMapper(cfg, *spec, *design); err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *explore {
		if err := runExplore(ctx, cfg, *spec, *mode, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "xdse: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string) {
		switch name {
		case "fig3":
			exp.ReportFig3(cfg, exp.RunFig3(ctx, cfg))
		case "fig4":
			exp.ReportFig4(cfg, exp.RunFig4(ctx, cfg))
		case "fig9", "fig10", "fig12", "table3", "static":
			c := exp.RunCampaign(ctx, cfg, exp.AllTechniques(), cfg.Models, 0)
			exp.ReportFig9(cfg, c, "Fig9 (static exploration)")
			exp.ReportFig10(cfg, c)
			exp.ReportFig12(cfg, c)
			exp.ReportTable3(cfg, c)
			exp.ReportEvalStats(cfg, c)
			s := exp.Summarize(cfg, c, "ExplainableDSE-Codesign")
			fmt.Printf("\nHeadline vs all non-explainable techniques: %.1fx lower latency (vs best other), %.1fx fewer iterations, %.1fx less time\n",
				s.LatencyRatioVsBest, s.IterRatio, s.TimeRatio)
			sc := exp.SummarizeVs(cfg, c, "ExplainableDSE-Codesign", func(t string) bool {
				return strings.HasSuffix(t, "-Codesign") && !strings.Contains(t, "ExplainableDSE")
			})
			fmt.Printf("Headline vs black-box codesign only (like-for-like): %.1fx lower latency, %.1fx fewer iterations, %.1fx less time\n",
				sc.LatencyRatioVsBest, sc.IterRatio, sc.TimeRatio)
		case "table2":
			c := exp.RunCampaign(ctx, cfg, exp.AllTechniques(), cfg.Models, cfg.DynamicBudget)
			exp.ReportFig9(cfg, c, fmt.Sprintf("Table2 (dynamic DSE, %d iterations)", cfg.DynamicBudget))
		case "fig11":
			exp.ReportFig11(cfg, exp.RunFig11(ctx, cfg))
		case "table7":
			exp.ReportTable7(cfg, exp.RunTable7(cfg))
		case "fig14":
			exp.ReportFig14(cfg, exp.RunFig14(ctx, cfg))
		case "fig15":
			exp.ReportFig15(cfg, exp.RunFig15(cfg))
		case "ablation":
			exp.ReportAblations(cfg, exp.RunAblations(ctx, cfg))
		case "energy":
			exp.ReportEnergyObjective(cfg, exp.RunEnergyObjective(ctx, cfg))
		case "multiworkload":
			exp.ReportMultiWorkload(cfg, exp.RunMultiWorkload(ctx, cfg))
		case "joint":
			exp.ReportJointVsTwoStage(cfg, exp.RunJointVsTwoStage(ctx, cfg))
		default:
			fmt.Fprintf(os.Stderr, "xdse: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *expName == "all" {
		for _, name := range []string{"fig3", "fig4", "fig9", "table2", "fig11", "table7", "fig14", "fig15", "ablation", "energy", "multiworkload", "joint"} {
			if ctx.Err() != nil {
				break
			}
			run(name)
		}
		exitIfInterrupted(ctx, *ckptDir, finishObs)
		return
	}
	run(*expName)
	exitIfInterrupted(ctx, *ckptDir, finishObs)
}

// exitIfInterrupted finishes an interrupted invocation: the partial report
// has already rendered, so flush the observability outputs (finish), say how
// to pick the campaign back up, and exit with the conventional SIGINT
// status. It exits through os.Exit, so finish must not rely on defers.
func exitIfInterrupted(ctx context.Context, ckptDir string, finish func()) {
	if ctx.Err() == nil {
		return
	}
	finish()
	fmt.Fprintf(os.Stderr, "\nxdse: interrupted; report above is partial\n")
	if ckptDir != "" {
		fmt.Fprintf(os.Stderr, "xdse: resumable from %s (re-run with -checkpoint %s -resume)\n", ckptDir, ckptDir)
	} else {
		fmt.Fprintf(os.Stderr, "xdse: run with -checkpoint DIR to make interrupted campaigns resumable\n")
	}
	os.Exit(130)
}

// writeMetricsFile dumps the registry to path in the Prometheus text
// exposition format, self-checking the dump for well-formedness so a broken
// export fails loudly instead of poisoning a scrape.
func writeMetricsFile(path string, reg *obs.Registry) error {
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		return err
	}
	if err := obs.ValidatePrometheus(b.String()); err != nil {
		return fmt.Errorf("malformed dump: %w", err)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// runReport implements `xdse report [-top N] [-run NAME] [-since-step N]
// <trace.jsonl>`: it reads the structured explanation trace a campaign wrote
// through -trace-out and renders the per-run acquisition timeline plus the
// top-N bottleneck/mitigation summary. A trace whose tail was truncated
// mid-record (a crashed or killed writer) still renders its intact prefix,
// but the command exits non-zero so scripts notice the loss.
func runReport(args []string) int {
	fs := flag.NewFlagSet("xdse report", flag.ExitOnError)
	topN := fs.Int("top", 5, "how many bottlenecks/rules to rank in the summary")
	runFilter := fs.String("run", "", "report only events of this run label (as shown in the untrimmed report headers)")
	sinceStep := fs.Int("since-step", 0, "report only events at attempt/step >= N (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: xdse report [-top N] [-run NAME] [-since-step N] <trace.jsonl>\n")
		return 2
	}
	warnf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "xdse report: "+format+"\n", a...)
	}
	events, torn, err := obs.ReadTraceChecked(fs.Arg(0), warnf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdse report: %v\n", err)
		return 1
	}
	events = filterEvents(events, *runFilter, *sinceStep)
	if len(events) == 0 {
		fmt.Fprintf(os.Stderr, "xdse report: no events match the -run/-since-step filters\n")
		return 1
	}
	if err := obs.WriteReport(os.Stdout, events, *topN); err != nil {
		fmt.Fprintf(os.Stderr, "xdse report: %v\n", err)
		return 1
	}
	if torn {
		fmt.Fprintf(os.Stderr, "xdse report: trace tail truncated mid-record (writer crashed or was killed); report above covers the intact prefix only\n")
		return 1
	}
	return 0
}

// filterEvents applies the report/trace subcommand filters: keep events of
// one run label (empty = all) at attempt >= sinceStep. Span and other
// unstepped events carry attempt 0 and survive any sinceStep <= 0 only.
func filterEvents(events []obs.Event, run string, sinceStep int) []obs.Event {
	if run == "" && sinceStep <= 0 {
		return events
	}
	out := events[:0:0]
	for _, ev := range events {
		if run != "" && ev.Run != run {
			continue
		}
		if ev.Attempt < sinceStep {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// runExplore performs one ad-hoc Explainable-DSE exploration over a
// (possibly user-specified) design space, printing the bottleneck reasoning
// behind every acquisition.
func runExplore(ctx context.Context, cfg exp.Config, specPath, mode string, quiet bool) error {
	specText := arch.EdgeSpaceSpec
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		specText = string(data)
	}
	space, err := arch.ParseSpace(specText)
	if err != nil {
		return err
	}

	mapper := eval.FixedDataflow
	switch mode {
	case "fixdf":
	case "codesign":
		mapper = eval.PrunedMappings
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}

	cons := eval.EdgeConstraints()
	ev := eval.New(eval.Config{
		Space:       space,
		Models:      cfg.Models,
		Constraints: cons,
		Mode:        mapper,
		MapTrials:   cfg.MapTrials,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
	})
	ex := dse.New(accelmodel.New(space, cons))
	if !quiet {
		ex.Opts.Log = os.Stdout
	}
	if cfg.Trace != nil {
		ex.Opts.Sink = obs.WithRun(cfg.Trace, "explore_"+mode)
	}
	names := make([]string, len(cfg.Models))
	for i, m := range cfg.Models {
		names[i] = m.Name
	}
	fmt.Printf("exploring %v over %s designs (%s, budget %d)\n\n", names, space.Size(), mode, cfg.Budget)

	tr := ex.Run(ev.ProblemCtx(ctx, cfg.Budget), rand.New(rand.NewSource(cfg.Seed)))
	if ctx.Err() != nil {
		fmt.Printf("\ninterrupted after %d designs; partial results below\n", tr.Evaluations)
	}
	fmt.Printf("\n%d designs evaluated, %.0f%% of acquisitions feasible\n",
		tr.Evaluations, tr.FeasibleFraction()*100)
	if tr.Best == nil {
		fmt.Println("no feasible design found")
		return nil
	}
	r := ev.Evaluate(tr.Best)
	fmt.Printf("best: %v\n  latency %.2f ms | area %.1f mm^2 | power %.2f W\n",
		r.Design, r.LatencyMs, r.AreaMM2, r.PowerW)
	return nil
}

// runMapper is the standalone-mapper mode: optimize and report the mapping
// of every layer of the selected workloads on one fixed design — the
// dMazeRunner-style substrate exposed directly.
func runMapper(cfg exp.Config, specPath, designSpec string) error {
	specText := arch.EdgeSpaceSpec
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		specText = string(data)
	}
	space, err := arch.ParseSpace(specText)
	if err != nil {
		return err
	}
	pt, err := parseDesign(space, designSpec)
	if err != nil {
		return err
	}

	ev := eval.New(eval.Config{
		Space:       space,
		Models:      cfg.Models,
		Constraints: eval.EdgeConstraints(),
		Mode:        eval.PrunedMappings,
		MapTrials:   cfg.MapTrials,
		Seed:        cfg.Seed,
	})
	r := ev.Evaluate(pt)
	fmt.Printf("design: %v\n", r.Design)
	fmt.Printf("area %.1f mm^2 | power %.2f W\n\n", r.AreaMM2, r.PowerW)
	for _, me := range r.Models {
		fmt.Printf("%s: %.2f ms (%.0f cycles), %.1f mJ\n", me.Model.Name, me.LatencyMs, me.Cycles, me.EnergyMJ)
		for _, le := range me.Layers {
			if !le.Perf.Valid {
				fmt.Printf("  %-16s INCOMPATIBLE: %s\n", le.Layer.Name, le.Perf.Incompat)
				continue
			}
			op, tn := le.Perf.MaxTNoC()
			bound := "comp"
			switch {
			case le.Perf.TDMA >= le.Perf.TComp && le.Perf.TDMA >= tn:
				bound = "dma"
			case tn >= le.Perf.TComp:
				bound = "noc-" + op.String()
			}
			fmt.Printf("  %-16s %10.0f cyc x%-3d PEs=%-4d %s-bound\n",
				le.Layer.Name, le.Perf.Cycles, le.Layer.Mult, le.Perf.PEsUsed, bound)
		}
	}
	return nil
}

// parseDesign resolves "name=value,..." over the space, defaulting every
// unmentioned parameter to its mid-range value.
func parseDesign(space *arch.Space, designSpec string) (arch.Point, error) {
	pt := space.Initial()
	for i, p := range space.Params {
		pt[i] = len(p.Values) / 2
	}
	if designSpec == "" {
		return pt, nil
	}
	for _, kv := range strings.Split(designSpec, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad design term %q", kv)
		}
		name := parts[0]
		var value int
		if _, err := fmt.Sscanf(parts[1], "%d", &value); err != nil {
			return nil, fmt.Errorf("bad value in %q", kv)
		}
		found := false
		for i, p := range space.Params {
			if p.Name != name {
				continue
			}
			found = true
			pt[i] = p.RoundUpIndex(value)
		}
		if !found {
			return nil, fmt.Errorf("unknown parameter %q", name)
		}
	}
	return pt, nil
}
