package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xdse/internal/evalcache"
)

// runCacheGC implements `xdse cache-gc -cache-dir DIR -max-age AGE`: open
// the persistent evaluation store, retire every record whose last access is
// older than AGE, and compact the journal. Retirement is safe by
// construction — records are content-addressed sub-results, so a retired
// record only means a future campaign recomputes that layer.
func runCacheGC(args []string) int {
	fs := flag.NewFlagSet("xdse cache-gc", flag.ExitOnError)
	dir := fs.String("cache-dir", "", "persistent evaluation-cache directory (required)")
	maxAge := fs.Duration("max-age", 30*24*time.Hour, "retire records last accessed longer ago than this")
	fs.Parse(args)
	if *dir == "" || fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: xdse cache-gc -cache-dir DIR [-max-age AGE]\n")
		return 2
	}
	warnf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "xdse cache-gc: "+format+"\n", a...)
	}
	store, err := evalcache.Open(*dir, evalcache.Options{Warnf: warnf})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdse cache-gc: %v\n", err)
		return 1
	}
	before := store.Len()
	retired, err := store.GC(*maxAge)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdse cache-gc: %v\n", err)
		return 1
	}
	fmt.Printf("cache-gc: %s: retired %d of %d records older than %v (%d kept)\n",
		*dir, retired, before, *maxAge, before-retired)
	return 0
}
