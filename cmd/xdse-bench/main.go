// Command xdse-bench runs the evaluation-layer performance benchmarks
// programmatically and appends one record to a JSON trajectory file
// (BENCH_eval.json by default), so successive commits accumulate a
// perf-over-time baseline future changes can be judged against.
//
// The benchmarked workload is the repeated-sub-key campaign behind the
// layer-grain mapping cache: a design space with one mapping-irrelevant
// dummy parameter, so distinct design points recur with identical mapping
// sub-keys. "cold" disables the layer cache and warm-started enumeration;
// "warm" is the default evaluator configuration.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"xdse/internal/arch"
	"xdse/internal/eval"
	"xdse/internal/mapping"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// Record is one trajectory entry of BENCH_eval.json.
type Record struct {
	Timestamp string `json:"timestamp"`
	Commit    string `json:"commit,omitempty"`
	GoVersion string `json:"go"`
	CPUs      int    `json:"cpus"`

	// Full-design evaluation over the repeated-sub-key campaign.
	EvaluateDesignColdNsOp     int64   `json:"evaluate_design_cold_ns_op"`
	EvaluateDesignWarmNsOp     int64   `json:"evaluate_design_warm_ns_op"`
	EvaluateDesignSpeedup      float64 `json:"evaluate_design_speedup"`
	EvaluateDesignWarmAllocsOp int64   `json:"evaluate_design_warm_allocs_op"`

	// Single-layer pruned enumeration, cold vs lower-bound+incumbent.
	EnumerateColdNsOp     int64   `json:"enumerate_pruned_cold_ns_op"`
	EnumerateWarmNsOp     int64   `json:"enumerate_pruned_warm_ns_op"`
	EnumerateSpeedup      float64 `json:"enumerate_pruned_speedup"`
	EnumerateColdAllocsOp int64   `json:"enumerate_pruned_cold_allocs_op"`

	// Tier-1 fast path: one EvaluateCycles call on a warm EvalContext (the
	// enumeration inner loop's unit of work). AllocsOp must stay 0.
	FastPathNsOp     int64 `json:"fastpath_ns_op"`
	FastPathAllocsOp int64 `json:"fastpath_allocs_op"`

	// Cache behavior on the warm campaign.
	LayerHits     int   `json:"layer_hits"`
	LayerMisses   int   `json:"layer_misses"`
	WarmProbes    int   `json:"warm_probes"`
	WarmFallbacks int   `json:"warm_fallbacks"`
	CostCalls     int64 `json:"cost_calls"`
	FullEvals     int64 `json:"full_evals"`
	LBPruned      int64 `json:"lb_pruned"`
	MapTrials     int64 `json:"map_trials"`

	// Persistent-store behavior on the warm campaign (zero unless
	// -cache-dir was given).
	PersistHits   int `json:"persist_hits,omitempty"`
	PersistMisses int `json:"persist_misses,omitempty"`
	PersistWrites int `json:"persist_writes,omitempty"`
}

// benchSpace is the edge space plus one parameter the decoder ignores:
// points differing only in it decode to identical designs, giving the
// repeated-sub-key workload.
func benchSpace() *arch.Space {
	s := arch.EdgeSpace()
	s.Params = append(s.Params, arch.Param{Name: "bench_dummy_knob", Values: []int{1, 2, 3}})
	return s
}

// benchPoints spreads n points over the space, repeating each underlying
// design three times under distinct dummy values.
func benchPoints(s *arch.Space, n int) []arch.Point {
	var pts []arch.Point
	for i := 0; len(pts) < n; i++ {
		pt := s.Initial()
		j := i / 3
		pt[arch.PPEs] = s.Clamp(arch.PPEs, 1+j%4)
		pt[arch.PL1] = s.Clamp(arch.PL1, 3+(j/4)%3)
		pt[arch.PL2] = s.Clamp(arch.PL2, 3)
		pt[arch.PBW] = s.Clamp(arch.PBW, (j/12)%5)
		for op := 0; op < arch.NumOperands; op++ {
			pt[arch.PVirt0+op] = s.Clamp(arch.PVirt0+op, 2)
		}
		pt[arch.NumParams] = s.Clamp(arch.NumParams, i%3)
		pts = append(pts, pt)
	}
	return pts
}

func evalConfig(s *arch.Space, cold bool, cacheDir string) eval.Config {
	cfg := eval.Config{
		Space:       s,
		Models:      []*workload.Model{workload.ResNet18()},
		Constraints: eval.EdgeConstraints(),
		Mode:        eval.PrunedMappings,
		MapTrials:   200,
		Seed:        1,
		Workers:     1,
		CacheDir:    cacheDir,
	}
	if cold {
		cfg.DisableLayerCache = true
		cfg.WarmStart = eval.WarmOff
	}
	return cfg
}

func benchEvaluateDesign(ctx context.Context, s *arch.Space, pts []arch.Point, cold bool, cacheDir string) (testing.BenchmarkResult, eval.Stats) {
	var stats eval.Stats
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := eval.New(evalConfig(s, cold, cacheDir))
			for _, pt := range pts {
				// A cancelled evaluation returns immediately, so a SIGINT
				// lands between designs instead of after the full campaign.
				e.EvaluateCtx(ctx, pt)
			}
			stats = e.Stats()
		}
	})
	return res, stats
}

// benchDesignLayer is the single (design, layer) pair of the enumeration and
// fast-path micro-benchmarks.
func benchDesignLayer() (arch.Design, workload.Layer) {
	s := arch.EdgeSpace()
	pt := s.Initial()
	pt[arch.PPEs] = 2
	pt[arch.PL1] = 4
	pt[arch.PL2] = 3
	for op := 0; op < arch.NumOperands; op++ {
		pt[arch.PVirt0+op] = 2
	}
	return s.MustDecode(pt), workload.ResNet18().Layers[1]
}

// benchFastPath times one Tier-1 EvaluateCycles call on a warm context —
// the unit of work of the enumeration inner loop — rotating the stationary
// orderings the way the enumerator does so the fill memo's hit path
// dominates, as in production.
func benchFastPath() testing.BenchmarkResult {
	d, l := benchDesignLayer()
	ctx := perf.NewContext(d, l)
	res := mapping.EnumeratePruned(l, mapping.GenConfig{
		PEs: d.PEs, L1Bytes: d.L1Bytes, L2Bytes: d.L2Bytes(), MinN: 10, MaxN: 200,
	}, ctx.Cost())
	m := res.Best
	if !res.Found {
		m = mapping.FixedOutputStationary(l, d.PEs, d.L1Bytes, d.L2Bytes())
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.DRAMStationary = mapping.Tensor(i % 3)
			m.NoCStationary = mapping.Tensor((i / 3) % 3)
			ctx.EvaluateCycles(&m)
		}
	})
}

func benchEnumerate(warm bool) testing.BenchmarkResult {
	d, l := benchDesignLayer()
	// One context per benchmark, as in production: internal/eval builds one
	// EvalContext per layer search and reuses it across all trials.
	ctx := perf.NewContext(d, l)
	cost := ctx.Cost()
	cfg := mapping.GenConfig{
		PEs: d.PEs, L1Bytes: d.L1Bytes, L2Bytes: d.L2Bytes(),
		MinN: 10, MaxN: 200, BaseValid: ctx.Valid(),
	}
	var incumbent *mapping.Mapping
	if warm {
		coldRes := mapping.EnumeratePruned(l, cfg, cost)
		if coldRes.Found {
			m := coldRes.Best
			incumbent = &m
		}
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			if warm {
				c.CostLB = perf.CostLowerBoundFn(l)
				c.Incumbent = incumbent
			}
			mapping.EnumeratePruned(l, c, cost)
		}
	})
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// exitIfInterrupted aborts the run without touching the trajectory file when
// the benchmark was signalled: a record timed against a half-cancelled
// campaign would poison the perf baseline. Exit code 130 matches shell
// convention for SIGINT.
func exitIfInterrupted(ctx context.Context, outPath string) {
	if ctx.Err() == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "xdse-bench: interrupted; no record appended to %s\n", outPath)
	os.Exit(130)
}

func main() {
	outPath := flag.String("out", "BENCH_eval.json", "trajectory file to append the record to")
	points := flag.Int("points", 24, "campaign size (design points per benchmark op)")
	cacheDir := flag.String("cache-dir", "", "attach the persistent evaluation cache (internal/evalcache) under this directory to the warm campaign")
	baseline := flag.String("baseline", "", "trajectory file to regression-check against (compares to its last record; non-zero exit on regression)")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional warm-campaign slowdown vs the baseline record")
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	s := benchSpace()
	pts := benchPoints(s, *points)

	coldRes, _ := benchEvaluateDesign(ctx, s, pts, true, "")
	exitIfInterrupted(ctx, *outPath)
	warmRes, warmStats := benchEvaluateDesign(ctx, s, pts, false, *cacheDir)
	exitIfInterrupted(ctx, *outPath)
	enumCold := benchEnumerate(false)
	exitIfInterrupted(ctx, *outPath)
	enumWarm := benchEnumerate(true)
	exitIfInterrupted(ctx, *outPath)
	fastPath := benchFastPath()
	exitIfInterrupted(ctx, *outPath)

	rec := Record{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Commit:    gitCommit(),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),

		EvaluateDesignColdNsOp:     coldRes.NsPerOp(),
		EvaluateDesignWarmNsOp:     warmRes.NsPerOp(),
		EvaluateDesignWarmAllocsOp: warmRes.AllocsPerOp(),
		EnumerateColdNsOp:          enumCold.NsPerOp(),
		EnumerateWarmNsOp:          enumWarm.NsPerOp(),
		EnumerateColdAllocsOp:      enumCold.AllocsPerOp(),
		FastPathNsOp:               fastPath.NsPerOp(),
		FastPathAllocsOp:           fastPath.AllocsPerOp(),

		LayerHits:     warmStats.LayerHits,
		LayerMisses:   warmStats.LayerMisses,
		WarmProbes:    warmStats.WarmProbes,
		WarmFallbacks: warmStats.WarmFallbacks,
		CostCalls:     warmStats.CostCalls,
		FullEvals:     warmStats.FullEvals,
		LBPruned:      warmStats.LBPruned,
		MapTrials:     warmStats.MapTrials,

		PersistHits:   warmStats.PersistHits,
		PersistMisses: warmStats.PersistMisses,
		PersistWrites: warmStats.PersistWrites,
	}
	if rec.EvaluateDesignWarmNsOp > 0 {
		rec.EvaluateDesignSpeedup = float64(rec.EvaluateDesignColdNsOp) / float64(rec.EvaluateDesignWarmNsOp)
	}
	if rec.EnumerateWarmNsOp > 0 {
		rec.EnumerateSpeedup = float64(rec.EnumerateColdNsOp) / float64(rec.EnumerateWarmNsOp)
	}

	var trajectory []Record
	if data, err := os.ReadFile(*outPath); err == nil {
		if err := json.Unmarshal(data, &trajectory); err != nil {
			fmt.Fprintf(os.Stderr, "xdse-bench: %s is not a trajectory array, starting fresh: %v\n", *outPath, err)
			trajectory = nil
		}
	}
	trajectory = append(trajectory, rec)
	data, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdse-bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "xdse-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("evaluate-design: cold %.1fms/op, warm %.1fms/op (%.2fx), %d allocs/op warm\n",
		float64(rec.EvaluateDesignColdNsOp)/1e6, float64(rec.EvaluateDesignWarmNsOp)/1e6,
		rec.EvaluateDesignSpeedup, rec.EvaluateDesignWarmAllocsOp)
	fmt.Printf("enumerate-pruned: cold %.1fus/op, warm %.1fus/op (%.2fx), %d allocs/op cold\n",
		float64(rec.EnumerateColdNsOp)/1e3, float64(rec.EnumerateWarmNsOp)/1e3,
		rec.EnumerateSpeedup, rec.EnumerateColdAllocsOp)
	fmt.Printf("fast path: %dns/op, %d allocs/op\n", rec.FastPathNsOp, rec.FastPathAllocsOp)
	fmt.Printf("layer cache: %d hits / %d misses, %d warm probes (%d fallbacks), cost calls %d of %d trials (%d lb-pruned), %d full evals\n",
		rec.LayerHits, rec.LayerMisses, rec.WarmProbes, rec.WarmFallbacks, rec.CostCalls,
		rec.MapTrials, rec.LBPruned, rec.FullEvals)
	if *cacheDir != "" {
		fmt.Printf("persistent cache: %d hits / %d misses, %d writes (%s)\n",
			rec.PersistHits, rec.PersistMisses, rec.PersistWrites, *cacheDir)
	}
	fmt.Printf("appended record %d to %s\n", len(trajectory), *outPath)

	if *baseline != "" {
		if err := checkRegression(rec, *baseline, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "xdse-bench: REGRESSION: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("regression check vs %s passed (max allowed slowdown %.0f%%)\n", *baseline, *maxRegress*100)
	}
}

// checkRegression gates the current record against the last record of the
// committed baseline trajectory: the warm-campaign time may not slip more
// than maxRegress past the baseline, and the enumeration inner loop must
// stay allocation-free (any fast-path allocs/op is an immediate failure,
// independent of timing noise).
func checkRegression(rec Record, baselinePath string, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base []Record
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if len(base) == 0 {
		return fmt.Errorf("baseline %s holds no records", baselinePath)
	}
	ref := base[len(base)-1]

	if rec.FastPathAllocsOp != 0 {
		return fmt.Errorf("fast path allocates %d times per call, want 0", rec.FastPathAllocsOp)
	}
	if ref.EvaluateDesignWarmNsOp > 0 {
		limit := float64(ref.EvaluateDesignWarmNsOp) * (1 + maxRegress)
		if float64(rec.EvaluateDesignWarmNsOp) > limit {
			return fmt.Errorf("warm EvaluateDesign %.1fms/op exceeds baseline %.1fms/op by more than %.0f%%",
				float64(rec.EvaluateDesignWarmNsOp)/1e6, float64(ref.EvaluateDesignWarmNsOp)/1e6, maxRegress*100)
		}
	}
	return nil
}
